// Resource governance: budgets, deadlines, cancellation, watchdogs, and
// checkpoint/resume (congest/governor.h, congest/checkpoint.h, and their
// wiring through cycle::solve()).
//
// The contracts under test:
//  * deterministic budgets (rounds, words) stop the same execution at the
//    same point at every thread count, and the result degrades to an
//    anytime answer with lower_bound <= w(MWC) <= upper_bound - never a
//    wrong certified value;
//  * cancellation and the no-progress watchdog stop a solve cooperatively
//    with the documented stop reason;
//  * a solve SIGKILLed mid-run (fork + die_at_round) resumes from its
//    checkpoint and produces a final report, metrics snapshot, and trace
//    log byte-identical to an uninterrupted run, at every thread count;
//  * a checkpoint never resumes against the wrong graph/seed/config, and a
//    torn or corrupted file is refused at load time.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#ifdef __unix__
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

#include "congest/checkpoint.h"
#include "congest/faults.h"
#include "congest/governor.h"
#include "congest/network.h"
#include "graph/generators.h"
#include "graph/sequential.h"
#include "mwc/api.h"
#include "support/rng.h"

namespace mwc::cycle {
namespace {

using congest::Budget;
using congest::CancelToken;
using congest::CheckpointSession;
using congest::Governor;
using congest::Network;
using congest::NetworkConfig;
using congest::StopReason;
using congest::WatchdogConfig;
using graph::Graph;
using graph::Weight;
using graph::WeightRange;

Graph test_graph(std::uint64_t seed, int n = 48, int m = 110) {
  support::Rng rng(seed);
  return graph::random_connected(n, m, WeightRange{1, 9}, rng);
}

std::string read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return {};
  std::string out;
  char buf[4096];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, got);
  std::fclose(f);
  return out;
}

void write_file(const std::string& path, const std::string& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr) << path;
  std::fwrite(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
}

// ---------- budgets are deterministic anytime results ------------------------

TEST(Governance, RoundBudgetStopsIdenticallyAtEveryThreadCount) {
  Graph g = test_graph(1);
  MwcReport ref;
  for (int threads : {1, 2, 4}) {
    NetworkConfig cfg;
    cfg.threads = threads;
    cfg.clamp_threads = false;  // the sweep must really run at `threads`
    Network net(g, 7, cfg);
    Governor governor(Budget{.max_rounds = 120});
    SolveOptions opts;
    opts.mode = SolveMode::kExact;
    opts.governor = &governor;
    MwcReport report = solve(net, opts);
    EXPECT_EQ(report.stop.reason, StopReason::kRoundBudget);
    EXPECT_EQ(report.run.outcome, congest::RunOutcome::kBudgetExhausted);
    if (threads == 1) {
      ref = report;
      continue;
    }
    // Bit-identical to the sequential engine: same stop point, same salvage.
    EXPECT_EQ(report.result.value, ref.result.value) << "threads " << threads;
    EXPECT_EQ(report.result.witness, ref.result.witness) << "threads " << threads;
    EXPECT_EQ(report.run.stats.rounds, ref.run.stats.rounds) << "threads " << threads;
    EXPECT_EQ(report.run.stats.words, ref.run.stats.words) << "threads " << threads;
    EXPECT_EQ(report.lower_bound, ref.lower_bound) << "threads " << threads;
    EXPECT_EQ(report.upper_bound, ref.upper_bound) << "threads " << threads;
    EXPECT_EQ(report.status, ref.status) << "threads " << threads;
  }
}

TEST(Governance, BudgetSweepAlwaysBracketsTheTrueAnswer) {
  Graph g = test_graph(2);
  const Weight oracle = graph::seq::mwc(g);
  bool saw_stop = false;
  bool saw_finish = false;
  for (std::uint64_t rounds : {1ULL, 30ULL, 80ULL, 200ULL, 1ULL << 40}) {
    Network net(g, 3);
    Governor governor(Budget{.max_rounds = rounds});
    SolveOptions opts;
    opts.mode = SolveMode::kExact;
    opts.governor = &governor;
    MwcReport report = solve(net, opts);
    // The anytime contract: whatever the budget, the bounds bracket the
    // truth and a certified label implies the exact answer.
    EXPECT_LE(report.lower_bound, oracle) << "budget " << rounds;
    EXPECT_GE(report.upper_bound, oracle) << "budget " << rounds;
    EXPECT_LE(report.lower_bound, report.upper_bound) << "budget " << rounds;
    if (report.certified()) {
      EXPECT_EQ(report.result.value, oracle) << "budget " << rounds;
      EXPECT_EQ(report.stop.reason, StopReason::kNone) << "budget " << rounds;
    }
    if (report.stop.reason != StopReason::kNone) saw_stop = true;
    if (report.stop.reason == StopReason::kNone) saw_finish = true;
  }
  EXPECT_TRUE(saw_stop);
  EXPECT_TRUE(saw_finish);
}

TEST(Governance, WordBudgetStopsWithExplicitDiagnostic) {
  Graph g = test_graph(3);
  Network net(g, 3);
  Governor governor(Budget{.max_words = 500});
  SolveOptions opts;
  opts.mode = SolveMode::kExact;
  opts.governor = &governor;
  MwcReport report = solve(net, opts);
  EXPECT_EQ(report.stop.reason, StopReason::kWordBudget);
  EXPECT_NE(report.stop.detail.find("word budget"), std::string::npos)
      << report.stop.detail;
  EXPECT_FALSE(report.certified());
  EXPECT_GE(report.upper_bound, graph::seq::mwc(g));
}

TEST(Governance, GovernorLatchesAcrossRuns) {
  Graph g = test_graph(4);
  Network net(g, 3);
  Governor governor(Budget{.max_rounds = 50});
  SolveOptions opts;
  opts.mode = SolveMode::kExact;
  opts.governor = &governor;
  MwcReport report = solve(net, opts);
  EXPECT_TRUE(governor.stopped());
  // A later governed run on the same (latched) governor winds down
  // immediately instead of burning more rounds.
  const std::uint64_t rounds_before = net.stats().rounds;
  Network net2(g, 5);
  SolveOptions opts2 = opts;
  MwcReport report2 = solve(net2, opts2);
  EXPECT_EQ(report2.stop.reason, report.stop.reason);
  EXPECT_EQ(net2.stats().rounds, 0u);
  EXPECT_EQ(net.stats().rounds, rounds_before);
}

// ---------- cancellation and watchdogs ---------------------------------------

TEST(Governance, CancelTokenStopsTheSolveCooperatively) {
  Graph g = test_graph(5);
  Network net(g, 3);
  CancelToken cancel;
  cancel.request("operator said stop");
  Governor governor;
  governor.set_cancel_token(&cancel);
  SolveOptions opts;
  opts.mode = SolveMode::kExact;
  opts.governor = &governor;
  MwcReport report = solve(net, opts);
  EXPECT_EQ(report.stop.reason, StopReason::kCancelled);
  EXPECT_EQ(report.run.outcome, congest::RunOutcome::kCancelled);
  EXPECT_NE(report.stop.detail.find("operator said stop"), std::string::npos);
  EXPECT_FALSE(report.certified());
}

TEST(Governance, NoProgressWatchdogAbortsAWedgedPhase) {
  // A permanently stalled link under the reliable transport: the ARQ backs
  // off waiting for an ack that never comes, the settled-word counter stops
  // moving, and the deterministic no-progress watchdog must abort the phase
  // with a diagnostic instead of spinning to the round limit.
  Graph g = test_graph(6);
  NetworkConfig cfg;
  cfg.reliable_transport = true;
  cfg.max_rounds_per_run = 5'000'000;  // the watchdog must win, not this
  cfg.faults.stalls.push_back(
      congest::StallFault{0, g.out(0)[0].to, 0, ~std::uint64_t{0}});
  Network net(g, 3, cfg);
  Governor governor(Budget{}, WatchdogConfig{.no_progress_rounds = 2000});
  SolveOptions opts;
  opts.mode = SolveMode::kExact;
  opts.governor = &governor;
  MwcReport report = solve(net, opts);
  EXPECT_EQ(report.stop.reason, StopReason::kNoProgress) << report.stop.detail;
  EXPECT_NE(report.stop.detail.find("no settled words"), std::string::npos)
      << report.stop.detail;
  EXPECT_FALSE(report.certified());
}

// ---------- checkpoint/resume ------------------------------------------------

struct GovernedRunFiles {
  std::string ckpt;
  std::string trace;
};

// One checkpointed, traced, metrics-collected exact solve; returns the
// report. `die_at_round` != 0 SIGKILLs the process at that engine round -
// callers fork first.
MwcReport run_checkpointed(const Graph& g, std::uint64_t seed, int threads,
                           const GovernedRunFiles& files, bool resume,
                           std::uint64_t die_at_round) {
  NetworkConfig cfg;
  cfg.threads = threads;
  cfg.clamp_threads = false;  // the sweep must really run at `threads`
  Network net(g, seed, cfg);

  CheckpointSession session(files.ckpt);
  if (resume) {
    std::string error;
    if (!session.load(&error)) throw std::runtime_error(error);
  }

  std::FILE* trace_out = nullptr;
  std::uint64_t base_events = 0;
  if (resume) {
    const congest::TracePosition pos = session.trace_position();
#ifdef __unix__
    if (::truncate(files.trace.c_str(), static_cast<off_t>(pos.bytes)) != 0) {
      throw std::runtime_error("cannot truncate " + files.trace);
    }
#endif
    base_events = pos.events;
    trace_out = std::fopen(files.trace.c_str(), "a");
    if (trace_out != nullptr) std::fseek(trace_out, 0, SEEK_END);
  } else {
    trace_out = std::fopen(files.trace.c_str(), "w");
  }
  if (trace_out == nullptr) throw std::runtime_error("cannot open trace");
  congest::Trace trace(1 << 12, congest::TraceOptions::full());
  congest::JsonlSink sink(trace_out);
  trace.add_sink(&sink);
  net.attach_trace(&trace);

  Governor governor;
  governor.die_at_round = die_at_round;
  session.set_trace_probe([&]() {
    sink.flush();
    congest::TracePosition pos;
    pos.bytes = static_cast<std::uint64_t>(std::ftell(trace_out));
    pos.events = base_events + sink.lines_written();
    return pos;
  });

  SolveOptions opts;
  opts.mode = SolveMode::kExact;
  opts.collect_metrics = true;
  opts.governor = &governor;
  opts.checkpoint = &session;
  MwcReport report = solve(net, opts);
  net.attach_trace(nullptr);
  sink.flush();
  std::fclose(trace_out);
  return report;
}

#ifdef __unix__
// The tentpole acceptance test: SIGKILL a checkpointing solve at a
// randomized engine round in a forked child, resume in the parent, and
// demand the final report, metrics JSON, and trace file byte-identical to
// an uninterrupted run - for kill/resume thread counts 1, 2, and 4.
TEST(Governance, KillAndResumeIsByteIdenticalAcrossThreadCounts) {
  const std::string dir = testing::TempDir();
  Graph g = test_graph(7);

  // Uninterrupted reference (sequential; threads never change results).
  const GovernedRunFiles ref_files{dir + "gov_ref.ckpt", dir + "gov_ref.jsonl"};
  MwcReport ref = run_checkpointed(g, 11, 1, ref_files, false, 0);
  ASSERT_EQ(ref.status, SolveStatus::kCertified);
  const std::string ref_trace = read_file(ref_files.trace);
  ASSERT_FALSE(ref_trace.empty());
  const std::uint64_t total_rounds = ref.run.stats.rounds;
  ASSERT_GT(total_rounds, 20u);

  support::Rng rng(99);
  for (int threads : {1, 2, 4}) {
    SCOPED_TRACE("threads " + std::to_string(threads));
    const std::string tag = dir + "gov_t" + std::to_string(threads);
    const GovernedRunFiles files{tag + ".ckpt", tag + ".jsonl"};
    const std::uint64_t kill_at = 5 + rng.next_below(total_rounds - 5);

    const pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      // Child: run until the governor SIGKILLs the process mid-solve.
      try {
        run_checkpointed(g, 11, threads, files, false, kill_at);
      } catch (...) {
      }
      _exit(0);  // die_at_round beyond the end: ran to completion
    }
    int wstatus = 0;
    ASSERT_EQ(waitpid(pid, &wstatus, 0), pid);
    ASSERT_TRUE(WIFSIGNALED(wstatus) || WIFEXITED(wstatus));
    if (WIFSIGNALED(wstatus)) {
      EXPECT_EQ(WTERMSIG(wstatus), SIGKILL) << "kill round " << kill_at;
    }

    MwcReport resumed = run_checkpointed(g, 11, threads, files, true, 0);
    EXPECT_EQ(resumed.status, ref.status) << "kill round " << kill_at;
    EXPECT_EQ(resumed.result.value, ref.result.value);
    EXPECT_EQ(resumed.result.witness, ref.result.witness);
    EXPECT_EQ(resumed.run.stats.rounds, ref.run.stats.rounds);
    EXPECT_EQ(resumed.run.stats.words, ref.run.stats.words);
    EXPECT_EQ(resumed.lower_bound, ref.lower_bound);
    EXPECT_EQ(resumed.upper_bound, ref.upper_bound);
    EXPECT_EQ(resumed.metrics.to_json(), ref.metrics.to_json())
        << "kill round " << kill_at;
    EXPECT_EQ(read_file(files.trace), ref_trace) << "kill round " << kill_at;
  }
}
#endif  // __unix__

TEST(Governance, CheckpointRefusesTheWrongIdentity) {
  const std::string dir = testing::TempDir();
  const std::string path = dir + "gov_identity.ckpt";
  Graph g = test_graph(8);
  {
    Network net(g, 21);
    CheckpointSession session(path);
    SolveOptions opts;
    opts.mode = SolveMode::kExact;
    opts.checkpoint = &session;
    MwcReport report = solve(net, opts);
    ASSERT_EQ(report.status, SolveStatus::kCertified);
  }

  // Same graph, different seed: refused with a seed diagnostic.
  {
    Network net(g, 22);
    CheckpointSession session(path);
    std::string error;
    ASSERT_TRUE(session.load(&error)) << error;
    SolveOptions opts;
    opts.mode = SolveMode::kExact;
    opts.checkpoint = &session;
    EXPECT_THROW(solve(net, opts), std::runtime_error);
  }

  // Different graph: refused too.
  {
    Graph other = test_graph(9);
    Network net(other, 21);
    CheckpointSession session(path);
    std::string error;
    ASSERT_TRUE(session.load(&error)) << error;
    ASSERT_FALSE(session.validate(net, 0, &error));
    EXPECT_NE(error.find("graph"), std::string::npos) << error;
  }

  // Different solve options (mode digest): refused.
  {
    Network net(g, 21);
    CheckpointSession session(path);
    std::string error;
    ASSERT_TRUE(session.load(&error)) << error;
    SolveOptions opts;
    opts.mode = SolveMode::kApprox;
    opts.checkpoint = &session;
    EXPECT_THROW(solve(net, opts), std::runtime_error);
  }
}

TEST(Governance, CorruptOrTornCheckpointIsRefusedAtLoad) {
  const std::string dir = testing::TempDir();
  const std::string path = dir + "gov_corrupt.ckpt";
  Graph g = test_graph(10);
  {
    Network net(g, 31);
    CheckpointSession session(path);
    SolveOptions opts;
    opts.mode = SolveMode::kExact;
    opts.checkpoint = &session;
    solve(net, opts);
  }
  const std::string good = read_file(path);
  ASSERT_FALSE(good.empty());

  // A sane file loads.
  {
    CheckpointSession session(path);
    std::string error;
    EXPECT_TRUE(session.load(&error)) << error;
  }
  // Flip one payload byte: the trailing checksum catches it.
  {
    std::string bad = good;
    bad[bad.size() / 2] = static_cast<char>(bad[bad.size() / 2] ^ 0x40);
    write_file(path, bad);
    CheckpointSession session(path);
    std::string error;
    EXPECT_FALSE(session.load(&error));
    EXPECT_FALSE(error.empty());
  }
  // Torn file (truncated mid-write without the tmp+rename dance).
  {
    write_file(path, good.substr(0, good.size() / 3));
    CheckpointSession session(path);
    std::string error;
    EXPECT_FALSE(session.load(&error));
  }
  // Wrong magic.
  {
    std::string bad = good;
    bad[0] = 'X';
    write_file(path, bad);
    CheckpointSession session(path);
    std::string error;
    EXPECT_FALSE(session.load(&error));
    EXPECT_NE(error.find("not a checkpoint"), std::string::npos) << error;
  }
  // Missing file.
  {
    CheckpointSession session(dir + "gov_never_written.ckpt");
    std::string error;
    EXPECT_FALSE(session.load(&error));
  }
}

TEST(Governance, StopReasonNamesAreStable) {
  // The stop-reason vocabulary is part of the CLI/CI contract
  // (docs/governance.md); renames break scripts that grep for them.
  EXPECT_STREQ(congest::to_string(StopReason::kNone), "none");
  EXPECT_STREQ(congest::to_string(StopReason::kRoundBudget), "round_budget");
  EXPECT_STREQ(congest::to_string(StopReason::kWordBudget), "word_budget");
  EXPECT_STREQ(congest::to_string(StopReason::kDeadline), "deadline");
  EXPECT_STREQ(congest::to_string(StopReason::kMemoryBudget), "memory_budget");
  EXPECT_STREQ(congest::to_string(StopReason::kNoProgress), "no_progress");
  EXPECT_STREQ(congest::to_string(StopReason::kStalled), "stalled");
  EXPECT_STREQ(congest::to_string(StopReason::kCancelled), "cancelled");
  EXPECT_STREQ(congest::to_string(congest::RunOutcome::kBudgetExhausted),
               "budget_exhausted");
  EXPECT_STREQ(congest::to_string(congest::RunOutcome::kCancelled),
               "cancelled");
}

}  // namespace
}  // namespace mwc::cycle
