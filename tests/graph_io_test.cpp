#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "graph/generators.h"
#include "graph/io.h"
#include "support/rng.h"

namespace mwc::graph {
namespace {

Graph roundtrip(const Graph& g) {
  std::stringstream ss;
  save_graph(g, ss);
  return load_graph(ss);
}

void expect_same(const Graph& a, const Graph& b) {
  ASSERT_EQ(a.is_directed(), b.is_directed());
  ASSERT_EQ(a.node_count(), b.node_count());
  ASSERT_EQ(a.edge_count(), b.edge_count());
  for (EdgeId i = 0; i < a.edge_count(); ++i) {
    EXPECT_EQ(a.edge(i).from, b.edge(i).from);
    EXPECT_EQ(a.edge(i).to, b.edge(i).to);
    EXPECT_EQ(a.edge(i).w, b.edge(i).w);
  }
}

TEST(GraphIo, RoundtripUndirectedWeighted) {
  support::Rng rng(1);
  Graph g = random_connected(30, 60, WeightRange{1, 9}, rng);
  expect_same(g, roundtrip(g));
}

TEST(GraphIo, RoundtripDirected) {
  support::Rng rng(2);
  Graph g = random_strongly_connected(25, 70, WeightRange{1, 5}, rng);
  expect_same(g, roundtrip(g));
}

TEST(GraphIo, CommentsAndBlankLinesIgnored) {
  std::stringstream ss(
      "# a comment\n"
      "\n"
      "mwc-graph undirected 3 2\n"
      "# edges follow\n"
      "0 1 5\n"
      "\n"
      "1 2 3\n");
  Graph g = load_graph(ss);
  EXPECT_EQ(g.node_count(), 3);
  EXPECT_EQ(g.edge_count(), 2);
  EXPECT_EQ(g.out(0)[0].w, 5);
}

TEST(GraphIo, RejectsBadHeader) {
  std::stringstream ss("not-a-graph directed 3 1\n0 1 1\n");
  EXPECT_THROW((void)load_graph(ss), std::runtime_error);
}

TEST(GraphIo, RejectsBadKind) {
  std::stringstream ss("mwc-graph sideways 3 1\n0 1 1\n");
  EXPECT_THROW((void)load_graph(ss), std::runtime_error);
}

TEST(GraphIo, RejectsTruncatedEdgeList) {
  std::stringstream ss("mwc-graph directed 3 2\n0 1 1\n");
  EXPECT_THROW((void)load_graph(ss), std::runtime_error);
}

TEST(GraphIo, RejectsOutOfRangeEndpoint) {
  std::stringstream ss("mwc-graph directed 3 1\n0 7 1\n");
  EXPECT_THROW((void)load_graph(ss), std::runtime_error);
}

TEST(GraphIo, RejectsZeroWeight) {
  std::stringstream ss("mwc-graph directed 3 1\n0 1 0\n");
  EXPECT_THROW((void)load_graph(ss), std::runtime_error);
}

TEST(GraphIo, RejectsSelfLoopAndDuplicate) {
  std::stringstream loop("mwc-graph directed 3 1\n1 1 1\n");
  EXPECT_THROW((void)load_graph(loop), std::runtime_error);
  std::stringstream dup("mwc-graph undirected 3 2\n0 1 1\n1 0 2\n");
  EXPECT_THROW((void)load_graph(dup), std::runtime_error);
}

TEST(GraphIo, AntiparallelDirectedArcsAccepted) {
  std::stringstream ss("mwc-graph directed 2 2\n0 1 1\n1 0 2\n");
  Graph g = load_graph(ss);
  EXPECT_TRUE(g.has_arc(0, 1));
  EXPECT_TRUE(g.has_arc(1, 0));
}

TEST(GraphIo, MissingFileThrows) {
  EXPECT_THROW((void)load_graph_file("/nonexistent/path.graph"),
               std::runtime_error);
}

TEST(GraphIo, RejectsNegativeWeight) {
  std::stringstream ss("mwc-graph directed 3 1\n0 1 -4\n");
  EXPECT_THROW((void)load_graph(ss), std::runtime_error);
}

TEST(GraphIo, RejectsNegativeEndpoint) {
  std::stringstream ss("mwc-graph undirected 3 1\n-1 2 1\n");
  EXPECT_THROW((void)load_graph(ss), std::runtime_error);
}

TEST(GraphIo, RejectsMalformedEdgeTokens) {
  std::stringstream ss("mwc-graph directed 3 1\n0 x 1\n");
  EXPECT_THROW((void)load_graph(ss), std::runtime_error);
}

TEST(GraphIo, RejectsTruncatedHeader) {
  std::stringstream ss("mwc-graph directed\n");
  EXPECT_THROW((void)load_graph(ss), std::runtime_error);
}

TEST(GraphIo, RejectsImplausibleNodeCount) {
  std::stringstream ss("mwc-graph directed 999999999 0\n");
  EXPECT_THROW((void)load_graph(ss), std::runtime_error);
}

TEST(GraphIo, RejectsEmptyInput) {
  std::stringstream ss("# only comments\n\n");
  EXPECT_THROW((void)load_graph(ss), std::runtime_error);
}

TEST(GraphIo, ErrorMessagesCarryTheOffendingLine) {
  std::stringstream ss("mwc-graph directed 3 2\n0 1 1\n0 9 1\n");
  try {
    (void)load_graph(ss);
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("line 3"), std::string::npos) << what;
    EXPECT_NE(what.find("out of range"), std::string::npos) << what;
  }
}

}  // namespace
}  // namespace mwc::graph
