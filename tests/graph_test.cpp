#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/sequential.h"
#include "graph/transforms.h"
#include "support/rng.h"

namespace mwc::graph {
namespace {

TEST(Graph, DirectedAdjacency) {
  std::vector<Edge> edges{{0, 1, 5}, {1, 2, 3}, {2, 0, 2}, {0, 2, 7}};
  Graph g = Graph::directed(3, edges);
  EXPECT_TRUE(g.is_directed());
  EXPECT_EQ(g.node_count(), 3);
  EXPECT_EQ(g.edge_count(), 4);
  ASSERT_EQ(g.out(0).size(), 2u);
  EXPECT_EQ(g.out(0)[0].to, 1);
  EXPECT_EQ(g.out(0)[1].to, 2);
  EXPECT_EQ(g.out(0)[1].w, 7);
  ASSERT_EQ(g.in(0).size(), 1u);
  EXPECT_EQ(g.in(0)[0].to, 2);  // in-arc from 2
  EXPECT_EQ(g.in(0)[0].w, 2);
  EXPECT_TRUE(g.has_arc(0, 1));
  EXPECT_FALSE(g.has_arc(1, 0));
}

TEST(Graph, UndirectedAdjacencySymmetric) {
  std::vector<Edge> edges{{0, 1, 5}, {1, 2, 3}};
  Graph g = Graph::undirected(3, edges);
  EXPECT_FALSE(g.is_directed());
  EXPECT_EQ(g.edge_count(), 2);
  EXPECT_TRUE(g.has_arc(0, 1));
  EXPECT_TRUE(g.has_arc(1, 0));
  ASSERT_EQ(g.out(1).size(), 2u);
  // Shared edge ids between the two arcs of an undirected edge.
  EXPECT_EQ(g.out(0)[0].edge, g.out(1)[0].edge);
}

TEST(Graph, AntiparallelArcsAllowedInDirected) {
  std::vector<Edge> edges{{0, 1, 5}, {1, 0, 3}};
  Graph g = Graph::directed(2, edges);
  EXPECT_TRUE(g.has_arc(0, 1));
  EXPECT_TRUE(g.has_arc(1, 0));
}

TEST(GraphDeath, RejectsSelfLoop) {
  std::vector<Edge> edges{{0, 0, 1}};
  EXPECT_DEATH((void)Graph::directed(2, edges), "self loops");
}

TEST(GraphDeath, RejectsParallelArcs) {
  std::vector<Edge> edges{{0, 1, 1}, {0, 1, 2}};
  EXPECT_DEATH((void)Graph::directed(2, edges), "parallel");
}

TEST(GraphDeath, RejectsDuplicateUndirectedEdge) {
  std::vector<Edge> edges{{0, 1, 1}, {1, 0, 2}};
  EXPECT_DEATH((void)Graph::undirected(2, edges), "parallel");
}

TEST(GraphDeath, RejectsZeroWeight) {
  std::vector<Edge> edges{{0, 1, 0}};
  EXPECT_DEATH((void)Graph::directed(2, edges), "weights");
}

TEST(Graph, ReversedSwapsArcs) {
  std::vector<Edge> edges{{0, 1, 5}, {1, 2, 3}};
  Graph g = Graph::directed(3, edges).reversed();
  EXPECT_TRUE(g.has_arc(1, 0));
  EXPECT_TRUE(g.has_arc(2, 1));
  EXPECT_FALSE(g.has_arc(0, 1));
  EXPECT_EQ(g.out(1)[0].w, 5);
}

TEST(Graph, CommunicationTopologyMergesAntiparallel) {
  std::vector<Edge> edges{{0, 1, 5}, {1, 0, 3}, {1, 2, 7}};
  Graph topo = Graph::directed(3, edges).communication_topology();
  EXPECT_FALSE(topo.is_directed());
  EXPECT_EQ(topo.edge_count(), 2);
  EXPECT_TRUE(topo.is_unit_weight());
}

TEST(Generators, RandomConnectedIsConnectedAcrossSeeds) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    support::Rng rng(seed);
    Graph g = random_connected(50, 120, WeightRange{1, 10}, rng);
    EXPECT_EQ(g.node_count(), 50);
    EXPECT_EQ(g.edge_count(), 120);
    EXPECT_TRUE(seq::is_connected_topology(g));
    EXPECT_GE(g.max_weight(), 1);
    EXPECT_LE(g.max_weight(), 10);
  }
}

TEST(Generators, CycleWithChordsHasHamiltonianCycle) {
  support::Rng rng(3);
  Graph g = cycle_with_chords(20, 5, WeightRange{1, 1}, rng);
  EXPECT_EQ(g.edge_count(), 25);
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(g.has_arc(i, (i + 1) % 20));
  }
}

TEST(Generators, GridGirthIsFour) {
  support::Rng rng(4);
  Graph g = grid(5, 6, /*torus=*/false, WeightRange{1, 1}, rng);
  EXPECT_EQ(g.node_count(), 30);
  EXPECT_EQ(seq::girth(g), 4);
}

TEST(Generators, RandomRegularConnectedAndRoughDegree) {
  support::Rng rng(5);
  Graph g = random_regular(40, 4, WeightRange{1, 1}, rng);
  EXPECT_TRUE(seq::is_connected_topology(g));
  for (NodeId v = 0; v < g.node_count(); ++v) {
    EXPECT_GE(g.out_degree(v), 2);
    EXPECT_LE(g.out_degree(v), 4);
  }
}

TEST(Generators, BarbellShape) {
  support::Rng rng(40);
  Graph g = graph::barbell(6, 4, WeightRange{1, 3}, rng);
  EXPECT_EQ(g.node_count(), 16);
  EXPECT_TRUE(seq::is_connected_topology(g));
  // Clique edges: 2 * C(6,2) = 30; bridge: 5.
  EXPECT_EQ(g.edge_count(), 35);
  // Diameter dominated by the bridge.
  EXPECT_GE(seq::communication_diameter(g), 5);
  EXPECT_EQ(seq::girth(g), 3);
}

TEST(Generators, ExpanderWithPlantedCycleIsExactAndShallow) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    support::Rng rng(seed);
    Weight planted = 0;
    Graph g = graph::expander_with_planted_cycle(100, 8, &planted, rng);
    EXPECT_EQ(planted, 8);
    EXPECT_TRUE(seq::is_connected_topology(g));
    EXPECT_EQ(seq::mwc(g), 8) << "seed " << seed;
    EXPECT_LE(seq::communication_diameter(g), 14) << "seed " << seed;
  }
}

TEST(Generators, PlantedMwcUndirectedIsExact) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    support::Rng rng(seed);
    Weight planted = 0;
    Graph g = planted_mwc_undirected(40, 80, 7, &planted, rng);
    EXPECT_EQ(planted, 7);
    EXPECT_EQ(seq::mwc(g), 7);
  }
}

TEST(Generators, PlantedMwcDirectedIsExact) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    support::Rng rng(seed);
    Weight planted = 0;
    Graph g = planted_mwc_directed(40, 90, 5, &planted, rng);
    EXPECT_EQ(planted, 5);
    EXPECT_TRUE(seq::is_strongly_connected(g));
    EXPECT_EQ(seq::mwc(g), 5);
  }
}

TEST(Generators, StronglyConnectedDigraph) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    support::Rng rng(seed);
    Graph g = random_strongly_connected(30, 70, WeightRange{1, 5}, rng);
    EXPECT_TRUE(seq::is_strongly_connected(g));
    EXPECT_EQ(g.edge_count(), 70);
  }
}

TEST(Generators, DirectedCycleWithShortcuts) {
  support::Rng rng(6);
  Graph g = directed_cycle_with_shortcuts(16, 4, WeightRange{1, 1}, rng);
  EXPECT_TRUE(seq::is_strongly_connected(g));
  EXPECT_EQ(g.edge_count(), 20);
}

TEST(Generators, BottleneckDigraphStronglyConnected) {
  support::Rng rng(7);
  Graph g = bottleneck_digraph(60, 4, rng);
  EXPECT_TRUE(seq::is_strongly_connected(g));
}

TEST(Transforms, ReweightedAppliesFunction) {
  std::vector<Edge> edges{{0, 1, 5}, {1, 2, 3}};
  Graph g = Graph::undirected(3, edges);
  Graph doubled = reweighted(g, [](Weight w) { return 2 * w; });
  EXPECT_EQ(doubled.out(0)[0].w, 10);
  Graph unit = unweighted_shape(g);
  EXPECT_TRUE(unit.is_unit_weight());
}

TEST(Transforms, ScaledWeightMatchesFormula) {
  // ceil(2*h*w / (eps*2^i)) for h=10, eps=0.5, i=2: ceil(20w/2) = 10w.
  EXPECT_EQ(scaled_weight(1, 10, 0.5, 2), 10);
  EXPECT_EQ(scaled_weight(3, 10, 0.5, 2), 30);
  // Large level: scales down; never below 1.
  EXPECT_EQ(scaled_weight(1, 10, 0.5, 20), 1);
}

TEST(Transforms, InducedSubgraphKeepsEdges) {
  std::vector<Edge> edges{{0, 1, 5}, {1, 2, 3}, {2, 3, 2}, {3, 0, 4}};
  Graph g = Graph::undirected(4, edges);
  Graph sub = induced_subgraph(g, {1, 2, 3});
  EXPECT_EQ(sub.node_count(), 3);
  EXPECT_EQ(sub.edge_count(), 2);  // {1,2} and {2,3} survive
  EXPECT_TRUE(sub.has_arc(0, 1));  // relabelled 1->0, 2->1
}

}  // namespace
}  // namespace mwc::graph
