// Theorem 1.6: k-source BFS / approximate SSSP.
//
// The skeleton algorithm must be *exact* on unweighted digraphs (Thm 1.6.A)
// and (1+eps)-approximate on weighted graphs (Thm 1.6.B); both are checked
// against sequential references across graph families and seeds, and the
// round advantage over the naive baselines is verified at moderate sizes.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "graph/generators.h"
#include "graph/sequential.h"
#include "ksssp/auto_select.h"
#include "ksssp/naive.h"
#include "ksssp/skeleton_bfs.h"
#include "ksssp/skeleton_sssp.h"
#include "support/rng.h"

namespace mwc::ksssp {
namespace {

using congest::Network;
using graph::Graph;
using graph::NodeId;
using graph::WeightRange;

std::vector<NodeId> pick_sources(int n, int k, std::uint64_t seed) {
  support::Rng rng(seed);
  std::vector<NodeId> all(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) all[static_cast<std::size_t>(i)] = i;
  rng.shuffle(all);
  all.resize(static_cast<std::size_t>(k));
  std::sort(all.begin(), all.end());
  return all;
}

struct Case {
  bool directed;
  int n, m, k;
  std::uint64_t seed;
};

class SkeletonBfsExact : public ::testing::TestWithParam<Case> {};

TEST_P(SkeletonBfsExact, MatchesSequentialBfs) {
  const Case& c = GetParam();
  support::Rng rng(c.seed);
  Graph g = c.directed
                ? graph::random_strongly_connected(c.n, 3 * c.n, WeightRange{1, 1}, rng)
                : graph::random_connected(c.n, 3 * c.n, WeightRange{1, 1}, rng);
  Network net(g, /*seed=*/c.seed * 13 + 7);
  SkeletonBfsParams params;
  params.sources = pick_sources(c.n, c.k, c.seed + 1000);
  KSsspResult result = skeleton_k_source_bfs(net, params);
  for (std::size_t i = 0; i < params.sources.size(); ++i) {
    auto ref = graph::seq::bfs_hops(g, params.sources[i]);
    for (NodeId v = 0; v < c.n; ++v) {
      ASSERT_EQ(result.dist.at(v, static_cast<int>(i)), ref[static_cast<std::size_t>(v)])
          << "n=" << c.n << " seed=" << c.seed << " source=" << params.sources[i]
          << " v=" << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SkeletonBfsExact,
    ::testing::Values(Case{true, 60, 0, 4, 1}, Case{true, 100, 0, 10, 2},
                      Case{true, 150, 0, 20, 3}, Case{true, 200, 0, 6, 4},
                      Case{true, 120, 0, 40, 5}, Case{false, 80, 0, 8, 6},
                      Case{false, 150, 0, 15, 7}, Case{true, 100, 0, 10, 8},
                      Case{true, 100, 0, 10, 9}, Case{true, 64, 0, 64, 10}));

TEST(SkeletonBfs, SingleSourceWorks) {
  support::Rng rng(11);
  Graph g = graph::random_strongly_connected(80, 200, WeightRange{1, 1}, rng);
  Network net(g, /*seed=*/21);
  SkeletonBfsParams params;
  params.sources = {17};
  KSsspResult result = skeleton_k_source_bfs(net, params);
  auto ref = graph::seq::bfs_hops(g, 17);
  for (NodeId v = 0; v < 80; ++v) {
    EXPECT_EQ(result.dist.at(v, 0), ref[static_cast<std::size_t>(v)]);
  }
}

TEST(SkeletonBfs, UnreachablePairsStayInfinite) {
  // Two directed cycles joined one-way: nothing in the second cycle can
  // reach the first.
  std::vector<graph::Edge> edges;
  for (int i = 0; i < 10; ++i) edges.push_back({i, (i + 1) % 10, 1});
  for (int i = 10; i < 20; ++i) edges.push_back({i, i == 19 ? 10 : i + 1, 1});
  edges.push_back({0, 10, 1});
  Graph g = Graph::directed(20, edges);
  Network net(g, /*seed=*/31);
  SkeletonBfsParams params;
  params.sources = {15};
  KSsspResult result = skeleton_k_source_bfs(net, params);
  auto ref = graph::seq::bfs_hops(g, 15);
  for (NodeId v = 0; v < 20; ++v) {
    EXPECT_EQ(result.dist.at(v, 0), ref[static_cast<std::size_t>(v)]);
  }
  EXPECT_EQ(result.dist.at(0, 0), graph::kInfWeight);
}

TEST(SkeletonBfs, SmallHOverrideStillExact) {
  // Stress the skeleton stitching: force h much smaller than sqrt(nk) so
  // almost every distance must go through skeleton hops.
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    support::Rng rng(seed);
    Graph g = graph::random_strongly_connected(90, 240, WeightRange{1, 1}, rng);
    Network net(g, /*seed=*/seed + 41);
    SkeletonBfsParams params;
    params.sources = pick_sources(90, 9, seed + 2000);
    params.h_override = 4;
    params.sample_constant = 3.0;
    KSsspResult result = skeleton_k_source_bfs(net, params);
    for (std::size_t i = 0; i < params.sources.size(); ++i) {
      auto ref = graph::seq::bfs_hops(g, params.sources[i]);
      for (NodeId v = 0; v < 90; ++v) {
        ASSERT_EQ(result.dist.at(v, static_cast<int>(i)), ref[static_cast<std::size_t>(v)])
            << "seed " << seed;
      }
    }
  }
}

TEST(SkeletonBfs, AgreesWithNaiveAndMeetsTheoryRoundBound) {
  // Deep graph (cycle with few chords). The skeleton run must agree with the
  // naive pipelined flood and stay within the Theorem 1.6.A budget
  // O~(sqrt(nk) + D); at n = 256 the log^2 n broadcast terms dominate, so
  // the bound is checked with its polylog factor spelled out. (The
  // crossover against the O(n + k) naive flood is asymptotic; bench_ksssp
  // reports the fitted growth exponents.)
  support::Rng rng(51);
  const int n = 256;
  Graph g = graph::directed_cycle_with_shortcuts(n, 24, WeightRange{1, 1}, rng);
  std::vector<NodeId> sources = pick_sources(n, 64, 777);

  Network net_skel(g, /*seed=*/61);
  SkeletonBfsParams params;
  params.sources = sources;
  KSsspResult skel = skeleton_k_source_bfs(net_skel, params);

  Network net_naive(g, /*seed=*/61);
  KSsspResult naive = naive_k_source_bfs(net_naive, sources);

  for (NodeId v = 0; v < n; ++v) {
    for (std::size_t i = 0; i < sources.size(); ++i) {
      EXPECT_EQ(skel.dist.at(v, static_cast<int>(i)), naive.dist.at(v, static_cast<int>(i)));
    }
  }
  const double sqrt_nk = std::sqrt(256.0 * 64.0);
  const double log_n = std::log(256.0);
  const int diam = graph::seq::communication_diameter(g);
  EXPECT_LE(static_cast<double>(skel.stats.rounds),
            3.0 * (sqrt_nk * log_n * log_n + diam));
}

// ---------- weighted (1+eps) ------------------------------------------------

struct WCase {
  bool directed;
  int n, k;
  double eps;
  std::uint64_t seed;
};

class SkeletonSsspApprox : public ::testing::TestWithParam<WCase> {};

TEST_P(SkeletonSsspApprox, SoundAndWithinOnePlusEps) {
  const WCase& c = GetParam();
  support::Rng rng(c.seed);
  Graph g = c.directed
                ? graph::random_strongly_connected(c.n, 3 * c.n, WeightRange{1, 20}, rng)
                : graph::random_connected(c.n, 3 * c.n, WeightRange{1, 20}, rng);
  Network net(g, /*seed=*/c.seed * 17 + 3);
  SkeletonSsspParams params;
  params.sources = pick_sources(c.n, c.k, c.seed + 3000);
  params.epsilon = c.eps;
  KSsspResult result = skeleton_k_source_sssp(net, params);
  for (std::size_t i = 0; i < params.sources.size(); ++i) {
    auto ref = graph::seq::dijkstra(g, params.sources[i]);
    for (NodeId v = 0; v < c.n; ++v) {
      graph::Weight est = result.dist.at(v, static_cast<int>(i));
      graph::Weight exact = ref[static_cast<std::size_t>(v)];
      if (exact == graph::kInfWeight) {
        EXPECT_EQ(est, graph::kInfWeight);
        continue;
      }
      ASSERT_NE(est, graph::kInfWeight) << "v=" << v;
      EXPECT_GE(est, exact);  // estimates witness real paths
      EXPECT_LE(static_cast<double>(est),
                (1.0 + c.eps) * static_cast<double>(exact) + 1e-9)
          << "n=" << c.n << " seed=" << c.seed << " v=" << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SkeletonSsspApprox,
    ::testing::Values(WCase{true, 60, 6, 0.25, 1}, WCase{true, 100, 10, 0.25, 2},
                      WCase{true, 100, 10, 0.5, 3}, WCase{false, 80, 8, 0.25, 4},
                      WCase{false, 120, 12, 0.5, 5}, WCase{true, 80, 20, 1.0, 6}));

TEST(AutoKBfs, AlwaysExactWhicheverStrategyWins) {
  struct Shape {
    int n, m, k;
    bool ring;
  };
  for (const Shape& sh : {Shape{120, 360, 2, false}, Shape{120, 360, 30, false},
                          Shape{120, 0, 3, true}, Shape{200, 600, 60, false},
                          Shape{160, 0, 40, true}}) {
    support::Rng rng(static_cast<std::uint64_t>(sh.n) + sh.k);
    Graph g = sh.ring ? graph::directed_cycle_with_shortcuts(
                            sh.n, 4, graph::WeightRange{1, 1}, rng)
                      : graph::random_strongly_connected(
                            sh.n, sh.m, graph::WeightRange{1, 1}, rng);
    std::vector<NodeId> sources = pick_sources(sh.n, sh.k, 77);
    Network net(g, 5);
    AutoKBfsResult out = k_source_bfs_auto(net, sources);
    for (std::size_t i = 0; i < sources.size(); ++i) {
      auto ref = graph::seq::bfs_hops(g, sources[i]);
      for (NodeId v = 0; v < sh.n; ++v) {
        ASSERT_EQ(out.result.dist.at(v, static_cast<int>(i)),
                  ref[static_cast<std::size_t>(v)])
            << "n=" << sh.n << " k=" << sh.k << " ring=" << sh.ring;
      }
    }
  }
}

TEST(AutoKBfs, PrefersSequentialForTinyKOnShallowGraphs) {
  support::Rng rng(31);
  Graph g = graph::random_strongly_connected(300, 900, graph::WeightRange{1, 1}, rng);
  Network net(g, 7);
  AutoKBfsResult out = k_source_bfs_auto(net, {5});
  EXPECT_EQ(out.chosen, KBfsStrategy::kSequential);
}

TEST(AutoKBfs, AvoidsSequentialForManySources) {
  support::Rng rng(33);
  Graph g = graph::random_strongly_connected(200, 600, graph::WeightRange{1, 1}, rng);
  Network net(g, 9);
  std::vector<NodeId> sources = pick_sources(200, 150, 55);
  AutoKBfsResult out = k_source_bfs_auto(net, sources);
  EXPECT_NE(out.chosen, KBfsStrategy::kSequential);
}

TEST(SequentialKSssp, MatchesDijkstraAndCostsPerSource) {
  support::Rng rng(71);
  Graph g = graph::random_strongly_connected(60, 150, WeightRange{1, 9}, rng);
  std::vector<NodeId> sources = pick_sources(60, 5, 99);
  Network net(g, /*seed=*/81);
  KSsspResult result = sequential_k_source_sssp(net, sources);
  std::uint64_t single_rounds = 0;
  {
    Network net1(g, /*seed=*/81);
    congest::RunStats s;
    congest::exact_sssp(net1, {sources[0]}, false, &s);
    single_rounds = s.rounds;
  }
  for (std::size_t i = 0; i < sources.size(); ++i) {
    auto ref = graph::seq::dijkstra(g, sources[i]);
    for (NodeId v = 0; v < 60; ++v) {
      EXPECT_EQ(result.dist.at(v, static_cast<int>(i)), ref[static_cast<std::size_t>(v)]);
    }
  }
  // Rounds scale roughly with k (sequential repetition).
  EXPECT_GE(result.stats.rounds, 3 * single_rounds);
}

}  // namespace
}  // namespace mwc::ksssp
