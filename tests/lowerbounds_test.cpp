// Lower-bound constructions: the reductions must be *correct* - the gadget's
// MWC decides set disjointness with the promised gap - and the structural
// claims (diameter, cut width, acyclicity) must hold, since the
// communication-complexity argument rests on them.
#include <gtest/gtest.h>

#include "congest/network.h"
#include "graph/sequential.h"
#include "lowerbounds/alpha_gadget.h"
#include "lowerbounds/disjointness_gadget.h"
#include "mwc/exact.h"
#include "support/rng.h"

namespace mwc::lb {
namespace {

using graph::kInfWeight;
using graph::Weight;

TEST(DisjointnessInstance, ForcedCasesBehave) {
  support::Rng rng(1);
  for (int trial = 0; trial < 10; ++trial) {
    auto yes = random_disjointness(6, 0.3, 1, rng);
    EXPECT_TRUE(yes.intersects);
    auto no = random_disjointness(6, 0.3, 0, rng);
    EXPECT_FALSE(no.intersects);
  }
}

TEST(DirectedDisjointnessGadget, MwcDecidesDisjointness) {
  support::Rng rng(2);
  for (std::uint64_t trial = 0; trial < 12; ++trial) {
    const int force = trial % 2 == 0 ? 1 : 0;
    auto inst = random_disjointness(8, 0.25, force, rng);
    GadgetGraph gadget = directed_disjointness_gadget(inst);
    Weight mwc = graph::seq::mwc(gadget.graph);
    if (inst.intersects) {
      EXPECT_EQ(mwc, gadget.mwc_if_intersecting) << "trial " << trial;
      EXPECT_LE(mwc, gadget.yes_threshold);
    } else {
      EXPECT_GE(mwc, gadget.min_mwc_if_disjoint) << "trial " << trial;
      EXPECT_GT(mwc, gadget.yes_threshold);
    }
  }
}

TEST(DirectedDisjointnessGadget, TwoMinusEpsGapIsExactlyTwo) {
  // Disjoint instances have MWC >= 8 = 2 * 4: the gadget defeats exactly
  // (2 - eps) for every eps > 0, matching Theorem 1.2.A.
  support::Rng rng(3);
  auto inst = random_disjointness(10, 0.6, 0, rng);
  GadgetGraph gadget = directed_disjointness_gadget(inst);
  Weight mwc = graph::seq::mwc(gadget.graph);
  if (mwc != kInfWeight) {
    EXPECT_GE(mwc, 8);
    EXPECT_EQ(mwc % 4, 0);  // all cycles alternate the four groups
  }
}

TEST(DirectedDisjointnessGadget, ConstantDiameterAndLinearCut) {
  support::Rng rng(4);
  auto inst = random_disjointness(12, 0.3, 1, rng);
  GadgetGraph gadget = directed_disjointness_gadget(inst);
  EXPECT_LE(graph::seq::communication_diameter(gadget.graph), 2);
  congest::Network net(gadget.graph, 5);
  net.set_cut(gadget.bob_side);
  // Fixed crossing arcs 2p, hub spokes into Bob's half 2p: Theta(p) total,
  // against p^2 bits of disjointness.
  EXPECT_LE(net.cut_link_count(), 4 * inst.pairs + 2);
}

TEST(DirectedDisjointnessGadget, ExactAlgorithmDecidesOnGadget) {
  support::Rng rng(6);
  for (int force = 0; force <= 1; ++force) {
    auto inst = random_disjointness(6, 0.3, force, rng);
    GadgetGraph gadget = directed_disjointness_gadget(inst);
    congest::Network net(gadget.graph, 7);
    net.set_cut(gadget.bob_side);
    cycle::MwcResult result = cycle::exact_mwc(net);
    EXPECT_EQ(result.value <= gadget.yes_threshold, inst.intersects);
    // The communication argument's subject: bits crossed the cut.
    EXPECT_GT(net.stats().cut_words, 0u);
  }
}

TEST(UndirectedDisjointnessGadget, MwcDecidesDisjointness) {
  support::Rng rng(8);
  for (std::uint64_t trial = 0; trial < 12; ++trial) {
    const int force = trial % 2 == 0 ? 1 : 0;
    auto inst = random_disjointness(7, 0.25, force, rng);
    GadgetGraph gadget = undirected_disjointness_gadget(inst, /*epsilon=*/0.5);
    Weight mwc = graph::seq::mwc(gadget.graph);
    if (inst.intersects) {
      EXPECT_EQ(mwc, gadget.mwc_if_intersecting) << "trial " << trial;
    } else {
      EXPECT_GE(mwc, gadget.min_mwc_if_disjoint) << "trial " << trial;
    }
    EXPECT_EQ(mwc <= gadget.yes_threshold, inst.intersects) << "trial " << trial;
  }
}

TEST(UndirectedDisjointnessGadget, GapBeatsTwoMinusEps) {
  // (2 - eps) * mwc_yes must stay below min_mwc_if_disjoint.
  for (double eps : {0.5, 0.25, 0.1}) {
    support::Rng rng(9);
    auto inst = random_disjointness(6, 0.3, 1, rng);
    GadgetGraph gadget = undirected_disjointness_gadget(inst, eps);
    EXPECT_LT((2.0 - eps) * static_cast<double>(gadget.mwc_if_intersecting),
              static_cast<double>(gadget.min_mwc_if_disjoint));
  }
}

TEST(AlphaGadgetDirected, InfiniteGapWhenDisjoint) {
  support::Rng rng(10);
  AlphaGadgetParams params;
  params.path_length = 8;
  params.alpha = 4.0;
  for (std::uint64_t trial = 0; trial < 10; ++trial) {
    auto inst = random_path_instance(10, 0.3, trial % 2 == 0 ? 1 : 0, rng);
    GadgetGraph gadget = directed_alpha_gadget(inst, params);
    Weight mwc = graph::seq::mwc(gadget.graph);
    if (inst.intersects) {
      EXPECT_EQ(mwc, gadget.mwc_if_intersecting);
      EXPECT_LE(mwc, gadget.yes_threshold);
    } else {
      EXPECT_EQ(mwc, kInfWeight);  // acyclic
    }
  }
}

TEST(AlphaGadgetDirected, LogDiameterViaShortcutTree) {
  support::Rng rng(11);
  auto inst = random_path_instance(16, 0.3, 1, rng);
  AlphaGadgetParams params;
  params.path_length = 16;
  GadgetGraph gadget = directed_alpha_gadget(inst, params);
  EXPECT_LE(graph::seq::communication_diameter(gadget.graph),
            2 * (2 + 4 /* ~log2(16) */));
}

TEST(AlphaGadgetUndirected, AlphaGapHolds) {
  support::Rng rng(12);
  AlphaGadgetParams params;
  params.path_length = 6;
  params.alpha = 3.0;
  for (std::uint64_t trial = 0; trial < 10; ++trial) {
    auto inst = random_path_instance(8, 0.3, trial % 2 == 0 ? 1 : 0, rng);
    GadgetGraph gadget = undirected_alpha_gadget(inst, params);
    Weight mwc = graph::seq::mwc(gadget.graph);
    if (inst.intersects) {
      EXPECT_EQ(mwc, gadget.mwc_if_intersecting);
      EXPECT_LE(static_cast<double>(mwc) * params.alpha,
                static_cast<double>(gadget.min_mwc_if_disjoint));
    } else {
      EXPECT_GE(mwc, gadget.min_mwc_if_disjoint);
    }
    EXPECT_EQ(mwc <= gadget.yes_threshold, inst.intersects);
  }
}

TEST(GirthAlphaGadget, CombinatorialAlphaGap) {
  support::Rng rng(13);
  AlphaGadgetParams params;
  params.path_length = 5;
  params.alpha = 2.5;
  for (std::uint64_t trial = 0; trial < 10; ++trial) {
    auto inst = random_path_instance(6, 0.3, trial % 2 == 0 ? 1 : 0, rng);
    GadgetGraph gadget = girth_alpha_gadget(inst, params);
    EXPECT_TRUE(gadget.graph.is_unit_weight());
    Weight girth = graph::seq::girth(gadget.graph);
    if (inst.intersects) {
      EXPECT_EQ(girth, gadget.mwc_if_intersecting);
      EXPECT_GT(static_cast<double>(gadget.min_mwc_if_disjoint),
                params.alpha * static_cast<double>(girth));
    } else {
      EXPECT_GE(girth, gadget.min_mwc_if_disjoint);
    }
    EXPECT_EQ(girth <= gadget.yes_threshold, inst.intersects);
  }
}

TEST(GirthAlphaGadget, CutSeparatesPlayers) {
  support::Rng rng(14);
  auto inst = random_path_instance(6, 0.4, 1, rng);
  AlphaGadgetParams params;
  params.path_length = 6;
  params.alpha = 2.0;
  GadgetGraph gadget = girth_alpha_gadget(inst, params);
  congest::Network net(gadget.graph, 15);
  net.set_cut(gadget.bob_side);
  // Only the p path edges at the cut column plus the s-s' return edge cross.
  EXPECT_LE(net.cut_link_count(), inst.paths + 1);
}

}  // namespace
}  // namespace mwc::lb
