// Metrics snapshots must be bit-identical across thread counts: the sink
// records exclusively on the host thread (span transitions between runs,
// per-direction word totals on the sequential merge path, one record_run at
// run end), so threads=N may only change wall-clock, never a counter. The
// suite runs real algorithms - including under injected faults and the
// reliable transport - at 1/2/4/8 threads and compares whole snapshots and
// their JSON bytes.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "congest/metrics.h"
#include "congest/network.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "ksssp/auto_select.h"
#include "mwc/api.h"
#include "support/rng.h"

namespace mwc {
namespace {

using congest::MetricsSnapshot;
using congest::Network;
using congest::NetworkConfig;
using graph::Graph;
using graph::WeightRange;

Graph instance(int cls, int n, std::uint64_t seed) {
  support::Rng rng(seed);
  switch (cls) {
    case 0: return graph::random_connected(n, 2 * n, WeightRange{1, 1}, rng);
    case 1: return graph::random_connected(n, 2 * n, WeightRange{1, 10}, rng);
    default:
      return graph::random_strongly_connected(n, 3 * n, WeightRange{1, 1}, rng);
  }
}

// Runs solve() with metrics at the given thread count.
MetricsSnapshot profile_solve(const Graph& g, std::uint64_t seed, int threads,
                              NetworkConfig base = NetworkConfig{}) {
  NetworkConfig cfg = base;
  cfg.threads = threads;
  cfg.clamp_threads = false;  // the sweep must really run at `threads`
  Network net(g, seed, cfg);
  cycle::SolveOptions opts;
  opts.collect_metrics = true;
  cycle::MwcReport report = cycle::solve(net, opts);
  return report.metrics;
}

void expect_thread_invariant(const Graph& g, std::uint64_t seed,
                             const NetworkConfig& base = NetworkConfig{}) {
  const MetricsSnapshot reference = profile_solve(g, seed, 1, base);
  EXPECT_GT(reference.total.runs, 0u);
  const std::string reference_json = reference.to_json();
  for (int threads : {2, 4, 8}) {
    const MetricsSnapshot snap = profile_solve(g, seed, threads, base);
    EXPECT_EQ(snap, reference) << "threads=" << threads << " seed=" << seed;
    EXPECT_EQ(snap.to_json(), reference_json) << "threads=" << threads;
  }
}

TEST(MetricsDeterminism, SolveAcrossThreadCountsAndSeeds) {
  for (int cls = 0; cls < 3; ++cls) {
    for (std::uint64_t seed : {1u, 5u}) {
      expect_thread_invariant(instance(cls, 70, 11 * seed + cls), seed);
    }
  }
}

TEST(MetricsDeterminism, LargeApproxInstance) {
  // Above kAutoExactThreshold: kAuto dispatches the sampling approximation,
  // whose phases (sample BFS, exchanges) stress the parallel merge path.
  expect_thread_invariant(instance(0, 160, 42), 3);
}

TEST(MetricsDeterminism, UnderDropFaultsWithReliableTransport) {
  NetworkConfig cfg;
  cfg.faults.drop_prob = 0.15;
  cfg.reliable_transport = true;
  const Graph g = instance(0, 60, 77);
  const MetricsSnapshot reference = profile_solve(g, 9, 1, cfg);
  // Faults actually fired, and the profile still matches bit-for-bit.
  EXPECT_GT(reference.total.dropped_messages, 0u);
  EXPECT_GT(reference.total.retransmitted_words, 0u);
  expect_thread_invariant(g, 9, cfg);
}

// Runs solve() with metrics AND the congestion observatory; the snapshot
// then carries the congestion and adherence sections too, and the whole
// document (JSON bytes included) must stay thread-count-invariant.
MetricsSnapshot profile_observed(const Graph& g, std::uint64_t seed,
                                 int threads,
                                 NetworkConfig base = NetworkConfig{}) {
  NetworkConfig cfg = base;
  cfg.threads = threads;
  cfg.clamp_threads = false;  // the sweep must really run at `threads`
  Network net(g, seed, cfg);
  cycle::SolveOptions opts;
  opts.collect_metrics = true;
  opts.congestion.enabled = true;
  return cycle::solve(net, opts).metrics;
}

void expect_observatory_invariant(const Graph& g, std::uint64_t seed,
                                  const NetworkConfig& base = NetworkConfig{}) {
  const MetricsSnapshot reference = profile_observed(g, seed, 1, base);
  ASSERT_TRUE(reference.congestion.observed);
  EXPECT_GT(reference.congestion.rounds_observed, 0u);
  EXPECT_GT(reference.congestion.total_words, 0u);
  EXPECT_FALSE(reference.congestion.top_links.empty());
  ASSERT_TRUE(reference.adherence.evaluated);
  EXPECT_FALSE(reference.adherence.entries.empty());
  const std::string reference_json = reference.to_json();
  EXPECT_NE(reference_json.find("\"congestion\""), std::string::npos);
  EXPECT_NE(reference_json.find("\"adherence\""), std::string::npos);
  for (int threads : {2, 4}) {
    const MetricsSnapshot snap = profile_observed(g, seed, threads, base);
    EXPECT_EQ(snap.congestion, reference.congestion)
        << "threads=" << threads << " seed=" << seed;
    EXPECT_EQ(snap.to_json(), reference_json) << "threads=" << threads;
  }
}

TEST(MetricsDeterminism, CongestionAndAdherenceAcrossThreads) {
  for (int cls = 0; cls < 3; ++cls) {
    expect_observatory_invariant(instance(cls, 70, 17 + cls), 5);
  }
}

TEST(MetricsDeterminism, CongestionUnderShuffledDeliveries) {
  // shuffle_deliveries permutes the per-round delivery order (a schedule
  // fuzz knob); observables are recorded on the host merge paths, so even
  // the congestion timeline must not notice.
  NetworkConfig cfg;
  cfg.shuffle_deliveries = true;
  expect_observatory_invariant(instance(0, 60, 33), 7, cfg);
}

TEST(MetricsDeterminism, CongestionUnderCorruptionFaults) {
  NetworkConfig cfg;
  cfg.faults.corrupt_prob = 0.05;
  cfg.reliable_transport = true;
  const Graph g = instance(0, 60, 55);
  const MetricsSnapshot reference = profile_observed(g, 9, 1, cfg);
  // Corruption actually fired; retransmissions inflate the link loads, and
  // the inflated ledger still matches bit-for-bit across thread counts.
  EXPECT_GT(reference.total.corrupted_words, 0u);
  EXPECT_GT(reference.total.checksum_rejects, 0u);
  expect_observatory_invariant(g, 9, cfg);
}

TEST(MetricsDeterminism, KSourceBfsAutoSnapshot) {
  const Graph g = instance(0, 90, 13);
  std::vector<graph::NodeId> sources{0, 7, 21, 40};

  auto run = [&](int threads) {
    NetworkConfig cfg;
    cfg.threads = threads;
    cfg.clamp_threads = false;  // the sweep must really run at `threads`
    Network net(g, 4, cfg);
    return ksssp::k_source_bfs_auto(net, sources);
  };
  const ksssp::AutoKBfsResult reference = run(1);
  EXPECT_FALSE(reference.algorithm.empty());
  EXPECT_EQ(reference.algorithm, to_string(reference.chosen));
  EXPECT_GT(reference.metrics.total.runs, 0u);
  ASSERT_NE(reference.metrics.find("probe diameter/bfs_tree"), nullptr);

  for (int threads : {2, 8}) {
    const ksssp::AutoKBfsResult other = run(threads);
    EXPECT_EQ(other.chosen, reference.chosen);
    EXPECT_EQ(other.metrics, reference.metrics) << "threads=" << threads;
    EXPECT_EQ(other.result.dist.dist, reference.result.dist.dist);
  }
}

}  // namespace
}  // namespace mwc
