// The Metrics sink and PhaseSpan annotation API (congest/metrics.h):
// attribution of runs to nested phase paths, congestion / cut / fault
// accounting, misuse surfacing (out-of-order and double closes, unclosed
// spans), absorb()/ScopedMetrics composition, the NetworkStats value
// struct, and the stability of the JSON export.
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "congest/metrics.h"
#include "congest/network.h"
#include "congest/protocol.h"
#include "congest/runner.h"
#include "graph/graph.h"

namespace mwc::congest {
namespace {

using graph::Edge;
using graph::Graph;

Graph path_graph(int n) {
  std::vector<Edge> edges;
  for (int i = 0; i + 1 < n; ++i) edges.push_back(Edge{i, i + 1, 1});
  return Graph::undirected(n, edges);
}

// Node 0 sends `count` single-word messages to node 1 at round 0.
class Burst : public Protocol {
 public:
  explicit Burst(int count) : count_(count) {}
  void begin(NodeCtx& node) override {
    if (node.id() != 0) return;
    for (int i = 0; i < count_; ++i) node.send(1, Message{static_cast<Word>(i)});
  }
  void round(NodeCtx&) override {}

 private:
  int count_;
};

TEST(Metrics, DetachedNetworkRecordsNothingAndSpansAreFree) {
  Graph g = path_graph(2);
  Network net(g, /*seed=*/1);
  ASSERT_EQ(net.metrics(), nullptr);
  PhaseSpan span(net, "ignored");  // no sink: must be a no-op
  Burst proto(3);
  run_protocol(net, proto);
  span.close();
  EXPECT_EQ(net.stats().rounds, 3u);  // the engine still ran normally
}

TEST(Metrics, AttributesRunsToNestedPhasePaths) {
  Graph g = path_graph(2);
  Network net(g, /*seed=*/1);
  Metrics metrics;
  net.attach_metrics(&metrics);

  {
    PhaseSpan outer(net, "outer");
    {
      PhaseSpan inner(net, "inner");
      Burst proto(5);
      run_protocol(net, proto);
    }
    Burst proto(2);
    run_protocol(net, proto);
  }
  Burst stray(1);
  run_protocol(net, stray);

  MetricsSnapshot snap = metrics.snapshot();
  EXPECT_TRUE(snap.clean());
  ASSERT_EQ(snap.phases.size(), 3u);

  const PhaseMetrics* inner = snap.find("outer/inner");
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->runs, 1u);
  EXPECT_EQ(inner->rounds, 5u);
  EXPECT_EQ(inner->words, 5u);

  const PhaseMetrics* outer = snap.find("outer");
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(outer->runs, 1u);  // only the run opened directly under "outer"
  EXPECT_EQ(outer->rounds, 2u);

  const PhaseMetrics* stray_phase = snap.find("(unattributed)");
  ASSERT_NE(stray_phase, nullptr);
  EXPECT_EQ(stray_phase->runs, 1u);
  EXPECT_EQ(stray_phase->rounds, 1u);

  // The total sums every run regardless of phase.
  EXPECT_EQ(snap.total.runs, 3u);
  EXPECT_EQ(snap.total.rounds, 8u);
  EXPECT_EQ(snap.total.words, 8u);
  EXPECT_EQ(snap.find("no-such-phase"), nullptr);
}

TEST(Metrics, RecordsBusiestLinkAndQueuePeak) {
  Graph g = path_graph(3);
  Network net(g, /*seed=*/1);
  Metrics metrics;
  net.attach_metrics(&metrics);
  PhaseSpan span(net, "burst");
  Burst proto(10);  // 10 words through direction 0 -> 1, then nothing else
  run_protocol(net, proto);
  span.close();

  MetricsSnapshot snap = metrics.snapshot();
  const PhaseMetrics* m = snap.find("burst");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->max_link_words, 10u);
  EXPECT_EQ(m->busiest_from, 0);
  EXPECT_EQ(m->busiest_to, 1);
  // 10 words queued at once, minus the one that starts transmitting.
  EXPECT_GE(m->max_queue_words, 9u);
}

TEST(Metrics, CutWordsPerPhase) {
  Graph g = path_graph(4);
  Network net(g, /*seed=*/1);
  std::vector<bool> side(4, false);
  side[2] = side[3] = true;  // cut between 1 and 2
  net.set_cut(std::move(side));

  Metrics metrics;
  net.attach_metrics(&metrics);
  {
    PhaseSpan span(net, "crossing");
    // Node 0 -> 1 does not cross; flood everything so some words cross.
    class Flood : public Protocol {
     public:
      void begin(NodeCtx& node) override {
        for (NodeId nb : node.comm_neighbors()) node.send(nb, Message{1});
      }
      void round(NodeCtx&) override {}
    };
    Flood proto;
    run_protocol(net, proto);
  }
  MetricsSnapshot snap = metrics.snapshot();
  const PhaseMetrics* m = snap.find("crossing");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->cut_words, 2u);  // 1->2 and 2->1
  EXPECT_EQ(m->cut_words, net.stats().cut_words);
}

TEST(Metrics, AbortedRunsAreCounted) {
  Graph g = path_graph(2);
  NetworkConfig cfg;
  cfg.max_rounds_per_run = 3;
  Network net(g, /*seed=*/1, cfg);
  Metrics metrics;
  net.attach_metrics(&metrics);
  PhaseSpan span(net, "capped");
  Burst proto(10);
  RunResult r = run_protocol_result(net, proto);
  span.close();
  ASSERT_EQ(r.outcome, RunOutcome::kRoundLimitExceeded);

  MetricsSnapshot snap = metrics.snapshot();
  const PhaseMetrics* m = snap.find("capped");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->runs, 1u);
  EXPECT_EQ(m->aborted_runs, 1u);
  EXPECT_EQ(snap.total.aborted_runs, 1u);
}

TEST(Metrics, FaultAccountingReachesThePhase) {
  Graph g = path_graph(4);  // Burst needs 0 and 1 adjacent
  NetworkConfig cfg;
  cfg.faults.drop_prob = 0.2;
  cfg.reliable_transport = true;
  Network net(g, /*seed=*/3, cfg);
  Metrics metrics;
  net.attach_metrics(&metrics);
  {
    PhaseSpan span(net, "lossy");
    Burst proto(8);
    run_protocol(net, proto);
  }
  MetricsSnapshot snap = metrics.snapshot();
  const PhaseMetrics* m = snap.find("lossy");
  ASSERT_NE(m, nullptr);
  // With 20% drops over an ARQ transport something must have been dropped
  // and retransmitted (seeds are deterministic, so this is stable).
  EXPECT_GT(m->dropped_messages, 0u);
  EXPECT_GT(m->retransmitted_words, 0u);
}

TEST(Metrics, OutOfOrderCloseIsSurfacedNotUB) {
  Metrics metrics;
  const std::uint64_t outer = metrics.open_phase("outer");
  metrics.open_phase("inner");
  metrics.close_phase(outer);  // closes "inner" too, but records the misuse
  EXPECT_TRUE(metrics.has_error());
  EXPECT_NE(metrics.error().find("outer"), std::string::npos);
  EXPECT_NE(metrics.error().find("inner"), std::string::npos);
  // The stack recovered: everything is closed.
  EXPECT_EQ(metrics.current_path(), "");
  MetricsSnapshot snap = metrics.snapshot();
  EXPECT_FALSE(snap.clean());
  EXPECT_EQ(snap.error, metrics.error());
}

TEST(Metrics, DoubleCloseIsSurfacedNotUB) {
  Metrics metrics;
  const std::uint64_t token = metrics.open_phase("p");
  metrics.close_phase(token);
  EXPECT_FALSE(metrics.has_error());
  metrics.close_phase(token);
  EXPECT_TRUE(metrics.has_error());
}

TEST(Metrics, UnclosedSpanListedInSnapshot) {
  Graph g = path_graph(2);
  Network net(g, /*seed=*/1);
  Metrics metrics;
  net.attach_metrics(&metrics);
  metrics.open_phase("left-open");
  MetricsSnapshot snap = metrics.snapshot();
  EXPECT_FALSE(snap.clean());
  ASSERT_EQ(snap.open_phases.size(), 1u);
  EXPECT_EQ(snap.open_phases[0], "left-open");
  EXPECT_TRUE(snap.error.empty());  // open-at-snapshot is not an error
}

TEST(Metrics, PhaseSpanCloseIsIdempotent) {
  Metrics metrics;
  {
    PhaseSpan span(&metrics, "p");
    span.close();
    // Destructor runs after the explicit close: must not double-close.
  }
  EXPECT_FALSE(metrics.has_error());
}

TEST(Metrics, ResetClearsEverything) {
  Metrics metrics;
  metrics.open_phase("p");
  RunProfile profile;
  profile.stats.rounds = 5;
  metrics.record_run(profile);
  metrics.reset();
  MetricsSnapshot snap = metrics.snapshot();
  EXPECT_TRUE(snap.clean());
  EXPECT_TRUE(snap.phases.empty());
  EXPECT_EQ(snap.total.runs, 0u);
  EXPECT_EQ(metrics.current_path(), "");
}

TEST(Metrics, AbsorbPrefixesWithCurrentPath) {
  Metrics inner;
  inner.open_phase("work");
  RunProfile profile;
  profile.stats.rounds = 4;
  profile.stats.words = 7;
  inner.record_run(profile);

  Metrics outer;
  const std::uint64_t token = outer.open_phase("caller");
  outer.absorb(inner.snapshot());
  outer.close_phase(token);

  MetricsSnapshot snap = outer.snapshot();
  const PhaseMetrics* m = snap.find("caller/work");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->rounds, 4u);
  EXPECT_EQ(m->words, 7u);
  EXPECT_EQ(snap.total.runs, 1u);
}

TEST(Metrics, ScopedMetricsRestoresAndForwardsToOuterSink) {
  Graph g = path_graph(2);
  Network net(g, /*seed=*/1);
  Metrics outer;
  net.attach_metrics(&outer);

  MetricsSnapshot local_snap;
  {
    PhaseSpan caller_span(net, "caller");
    ScopedMetrics scoped(net);
    EXPECT_EQ(net.metrics(), &scoped.metrics());
    PhaseSpan span(net, "work");
    Burst proto(3);
    run_protocol(net, proto);
    span.close();
    local_snap = scoped.snapshot();
    scoped.release();
    EXPECT_EQ(net.metrics(), &outer);
  }

  // The callee saw its own runs under its own (unprefixed) paths...
  ASSERT_NE(local_snap.find("work"), nullptr);
  EXPECT_EQ(local_snap.total.rounds, 3u);
  // ...and the outer sink still observed them, under the caller's path.
  MetricsSnapshot snap = outer.snapshot();
  ASSERT_NE(snap.find("caller/work"), nullptr);
  EXPECT_EQ(snap.total.rounds, 3u);
}

TEST(Metrics, JsonShapeIsStable) {
  Graph g = path_graph(2);
  Network net(g, /*seed=*/1);
  Metrics metrics;
  net.attach_metrics(&metrics);
  {
    PhaseSpan span(net, "phase \"a\"");  // exercises quoting
    Burst proto(2);
    run_protocol(net, proto);
  }
  const std::string json = metrics.snapshot().to_json();
  EXPECT_NE(json.find("\"total\""), std::string::npos);
  EXPECT_NE(json.find("\"phases\""), std::string::npos);
  EXPECT_NE(json.find("\"open_phases\": []"), std::string::npos);
  EXPECT_NE(json.find("\"error\": \"\""), std::string::npos);
  EXPECT_NE(json.find("\"phase \\\"a\\\"\""), std::string::npos);
  EXPECT_NE(json.find("\"rounds\": 2"), std::string::npos);
  // Same snapshot, same bytes.
  EXPECT_EQ(json, metrics.snapshot().to_json());
}

TEST(NetworkStats, MatchesAccumulatedCountersAndCompares) {
  Graph g = path_graph(2);
  Network net(g, /*seed=*/1);
  EXPECT_EQ(net.stats(), NetworkStats{});
  Burst proto(4);
  run_protocol(net, proto);

  NetworkStats s = net.stats();
  EXPECT_EQ(s.rounds, 4u);
  EXPECT_EQ(s.messages, 4u);
  EXPECT_EQ(s.words, 4u);
  EXPECT_EQ(s.cut_words, 0u);
  EXPECT_EQ(s.runs, 1u);

  Burst more(1);
  run_protocol(net, more);
  EXPECT_NE(net.stats(), s);  // value semantics: the old copy is a snapshot
  EXPECT_EQ(net.stats().runs, 2u);
}

}  // namespace
}  // namespace mwc::congest
