// Direct property tests of the structural lemmas the algorithms rest on,
// evaluated with exact sequential distances so failures localize the math
// rather than the protocol plumbing.
//
//  * Fact 1 (Lemma 5.1 of [13]): the inequality that lets R(v) stand in for
//    eliminated neighborhood vertices with factor 2;
//  * Lemma 3.2: P(v) is connected inside v's shortest-path out-tree, so a
//    BFS restricted to P(v) reaches all of it;
//  * the P(v) size-reduction effect of the greedy R(v) construction;
//  * the scaling lemma of [41] / Section 5.1: an h-hop path survives with
//    (1+eps) distortion at ladder level ceil(log2 w(P));
//  * the straddling-edge argument behind the exact undirected baseline:
//    min over roots and non-tree edges of d(w,x)+d(w,y)+wt equals the MWC.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <queue>
#include <vector>

#include "graph/generators.h"
#include "graph/sequential.h"
#include "graph/transforms.h"
#include "support/math_util.h"
#include "support/rng.h"

namespace mwc::graph {
namespace {

// Minimum weight of a directed cycle through both a and b: d(a,b) + d(b,a).
Weight cycle_through(const std::vector<std::vector<Weight>>& d, NodeId a, NodeId b) {
  if (d[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] == kInfWeight ||
      d[static_cast<std::size_t>(b)][static_cast<std::size_t>(a)] == kInfWeight) {
    return kInfWeight;
  }
  return d[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] +
         d[static_cast<std::size_t>(b)][static_cast<std::size_t>(a)];
}

TEST(Fact1, HoldsOnRandomDigraphs) {
  // For all v, y, t: if d(y,t) + 2 d(v,y) >= d(t,y) + 2 d(v,t), then a
  // minimum cycle through t and v weighs at most twice the minimum cycle
  // through v and y.
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    support::Rng rng(seed);
    Graph g = random_strongly_connected(24, 70, WeightRange{1, 9}, rng);
    auto d = seq::apsp(g);
    const int n = g.node_count();
    for (NodeId v = 0; v < n; ++v) {
      for (NodeId y = 0; y < n; ++y) {
        if (y == v) continue;
        const Weight c_vy = cycle_through(d, v, y);
        if (c_vy == kInfWeight) continue;
        for (NodeId t = 0; t < n; ++t) {
          if (t == v || t == y) continue;
          const auto dv = [&](NodeId a, NodeId b) {
            return d[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)];
          };
          if (dv(y, t) == kInfWeight || dv(t, y) == kInfWeight) continue;
          if (dv(y, t) + 2 * dv(v, y) >= dv(t, y) + 2 * dv(v, t)) {
            const Weight c_tv = cycle_through(d, v, t);
            ASSERT_NE(c_tv, kInfWeight);
            EXPECT_LE(c_tv, 2 * c_vy)
                << "seed=" << seed << " v=" << v << " y=" << y << " t=" << t;
          }
        }
      }
    }
  }
}

// P(v) from Definition 3.1 with exact distances and an arbitrary R(v).
std::vector<bool> neighborhood_p(const std::vector<std::vector<Weight>>& d,
                                 NodeId v, const std::vector<NodeId>& r) {
  const int n = static_cast<int>(d.size());
  std::vector<bool> in_p(static_cast<std::size_t>(n), false);
  for (NodeId y = 0; y < n; ++y) {
    bool ok = true;
    for (NodeId t : r) {
      const Weight lhs = d[static_cast<std::size_t>(y)][static_cast<std::size_t>(t)] +
                         2 * d[static_cast<std::size_t>(v)][static_cast<std::size_t>(y)];
      const Weight rhs = d[static_cast<std::size_t>(t)][static_cast<std::size_t>(y)] +
                         2 * d[static_cast<std::size_t>(v)][static_cast<std::size_t>(t)];
      if (lhs > rhs) {
        ok = false;
        break;
      }
    }
    in_p[static_cast<std::size_t>(y)] = ok;
  }
  return in_p;
}

TEST(Lemma32, NeighborhoodConnectedInShortestPathTree) {
  // Every vertex on any shortest v->y path is itself in P(v) when y is.
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    support::Rng rng(seed + 50);
    Graph g = random_strongly_connected(22, 60, WeightRange{1, 7}, rng);
    auto d = seq::apsp(g);
    const int n = g.node_count();
    support::Rng pick(seed + 99);
    for (int trial = 0; trial < 4; ++trial) {
      const auto v = static_cast<NodeId>(pick.next_below(static_cast<std::uint64_t>(n)));
      std::vector<NodeId> r;
      for (int i = 0; i < 3; ++i) {
        r.push_back(static_cast<NodeId>(pick.next_below(static_cast<std::uint64_t>(n))));
      }
      auto in_p = neighborhood_p(d, v, r);
      for (NodeId y = 0; y < n; ++y) {
        if (!in_p[static_cast<std::size_t>(y)]) continue;
        if (d[static_cast<std::size_t>(v)][static_cast<std::size_t>(y)] == kInfWeight) continue;
        for (NodeId z = 0; z < n; ++z) {
          const Weight vz = d[static_cast<std::size_t>(v)][static_cast<std::size_t>(z)];
          const Weight zy = d[static_cast<std::size_t>(z)][static_cast<std::size_t>(y)];
          if (vz == kInfWeight || zy == kInfWeight) continue;
          if (vz + zy ==
              d[static_cast<std::size_t>(v)][static_cast<std::size_t>(y)]) {
            EXPECT_TRUE(in_p[static_cast<std::size_t>(z)])
                << "seed=" << seed << " v=" << v << " y=" << y << " z=" << z;
          }
        }
      }
    }
  }
}

TEST(GreedyR, ShrinksNeighborhoodOnAverage) {
  // The lines 3-8 construction: each greedy pick roughly halves the
  // uncovered set. We check the qualitative effect: with a greedy R built
  // from Theta(log n) groups of random samples, |P(v)| is much smaller than
  // with R = {} (which gives P(v) = V).
  support::Rng rng(7);
  Graph g = random_strongly_connected(80, 400, WeightRange{1, 5}, rng);
  auto d = seq::apsp(g);
  const int n = g.node_count();
  support::Rng pick(8);
  // Sample S and group it.
  std::vector<NodeId> samples;
  for (NodeId u = 0; u < n; ++u) {
    if (pick.next_bool(0.35)) samples.push_back(u);
  }
  const int beta = support::ceil_log2(static_cast<std::uint64_t>(n));
  double total_p = 0;
  int measured = 0;
  for (NodeId v = 0; v < n; v += 7) {
    std::vector<NodeId> r;
    for (int gi = 0; gi < beta; ++gi) {
      // Group gi = samples congruent to gi mod beta.
      std::vector<NodeId> t_set;
      for (std::size_t idx = gi; idx < samples.size();
           idx += static_cast<std::size_t>(beta)) {
        NodeId s = samples[idx];
        bool ok = true;
        for (NodeId t : r) {
          const Weight lhs = d[static_cast<std::size_t>(s)][static_cast<std::size_t>(t)] +
                             2 * d[static_cast<std::size_t>(v)][static_cast<std::size_t>(s)];
          const Weight rhs = d[static_cast<std::size_t>(t)][static_cast<std::size_t>(s)] +
                             2 * d[static_cast<std::size_t>(v)][static_cast<std::size_t>(t)];
          if (lhs > rhs) {
            ok = false;
            break;
          }
        }
        if (ok) t_set.push_back(s);
      }
      if (!t_set.empty()) {
        r.push_back(t_set[pick.next_below(t_set.size())]);
      }
    }
    auto in_p = neighborhood_p(d, v, r);
    total_p += static_cast<double>(std::count(in_p.begin(), in_p.end(), true));
    ++measured;
  }
  const double avg_p = total_p / measured;
  // With |S| ~ 0.35 n the theory bound is ~ n/|S| * polylog ~ small; assert
  // the qualitative effect with slack.
  EXPECT_LT(avg_p, 0.35 * n) << "greedy R failed to shrink P(v)";
}

TEST(ScalingLemma, PathSurvivesAtItsLevel) {
  // For an h-hop path P with weight w(P), at level i = ceil(log2 w(P)) the
  // scaled weight is at most h* = (1 + 2/eps) h, and unscaling any scaled
  // value <= scaled(P) stays within (1 + eps) w(P).
  support::Rng rng(21);
  const int h = 12;
  for (double eps : {0.5, 0.25}) {
    const auto h_star = static_cast<Weight>(
        std::ceil((1.0 + 2.0 / eps) * static_cast<double>(h)));
    for (int trial = 0; trial < 200; ++trial) {
      // A random "path": h edge weights.
      const int hops = 1 + static_cast<int>(rng.next_below(h));
      Weight w_path = 0;
      std::vector<Weight> edges;
      for (int i = 0; i < hops; ++i) {
        edges.push_back(rng.next_in(1, 50));
        w_path += edges.back();
      }
      const int level = support::ceil_log2(static_cast<std::uint64_t>(w_path));
      Weight scaled = 0;
      for (Weight w : edges) scaled += scaled_weight(w, h, eps, level);
      EXPECT_LE(scaled, h_star) << "w(P)=" << w_path << " level=" << level;
      const double unscale = eps * std::ldexp(1.0, level) / (2.0 * h);
      const double back = static_cast<double>(scaled) * unscale;
      EXPECT_GE(back + 1e-9, static_cast<double>(w_path));  // sound
      EXPECT_LE(back, (1.0 + eps) * static_cast<double>(w_path) + 1e-9);
    }
  }
}

TEST(StraddlingEdge, NonTreeCandidatesHitTheMwcExactly) {
  // Dijkstra with explicit parents; min over roots w and non-tree edges
  // (x,y) of d(w,x) + d(w,y) + wt(x,y) must equal the MWC (both bounds).
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    support::Rng rng(seed + 200);
    Graph g = random_connected(30, 70, WeightRange{1, 9}, rng);
    const Weight mwc = seq::mwc(g);
    const int n = g.node_count();
    Weight best = kInfWeight;
    for (NodeId w = 0; w < n; ++w) {
      // Dijkstra with parents.
      std::vector<Weight> dist(static_cast<std::size_t>(n), kInfWeight);
      std::vector<NodeId> parent(static_cast<std::size_t>(n), kNoNode);
      using Item = std::pair<Weight, NodeId>;
      std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
      dist[static_cast<std::size_t>(w)] = 0;
      pq.emplace(0, w);
      while (!pq.empty()) {
        auto [dd, u] = pq.top();
        pq.pop();
        if (dd != dist[static_cast<std::size_t>(u)]) continue;
        for (const Arc& a : g.out(u)) {
          if (dd + a.w < dist[static_cast<std::size_t>(a.to)]) {
            dist[static_cast<std::size_t>(a.to)] = dd + a.w;
            parent[static_cast<std::size_t>(a.to)] = u;
            pq.emplace(dd + a.w, a.to);
          }
        }
      }
      for (const Edge& e : g.edges()) {
        if (parent[static_cast<std::size_t>(e.from)] == e.to ||
            parent[static_cast<std::size_t>(e.to)] == e.from) {
          continue;  // tree edge
        }
        const Weight dx = dist[static_cast<std::size_t>(e.from)];
        const Weight dy = dist[static_cast<std::size_t>(e.to)];
        if (dx == kInfWeight || dy == kInfWeight) continue;
        best = std::min(best, dx + dy + e.w);
      }
    }
    EXPECT_EQ(best, mwc) << "seed " << seed;
  }
}

}  // namespace
}  // namespace mwc::graph
