// Parallel engine determinism: NetworkConfig::threads > 1 must be
// bit-identical to sequential execution - same trace event sequence, same
// RunStats, same algorithm outputs - across seeds, adversarial-schedule
// shuffling, and active fault plans. These tests run every scenario at
// threads=1 and at 2/4/8 threads and compare everything observable.
//
// The engine's claim (docs/simulator.md, "Execution model") is exact
// equality, not statistical equivalence, so every comparison here is
// EXPECT_EQ on whole vectors of trace events and field-wise RunStats.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "congest/multi_bfs.h"
#include "congest/network.h"
#include "congest/runner.h"
#include "congest/trace.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "mwc/exact.h"
#include "mwc/girth_approx.h"
#include "support/rng.h"

namespace mwc::congest {
namespace {

using graph::Graph;
using graph::NodeId;
using graph::WeightRange;

constexpr int kThreadCounts[] = {2, 4, 8};

Graph test_graph(std::uint64_t seed, int n = 48, int m = 110) {
  support::Rng rng(seed);
  return graph::random_connected(n, m, WeightRange{1, 9}, rng);
}

// Everything observable about an execution. `jsonl` is the whole streamed
// event sequence serialized by a JsonlSink - with the full event vocabulary
// enabled (run/round markers, transport events, queue peaks) - so the
// byte-identity claim covers every extended event kind, not just the ring's
// retained window.
struct Artifacts {
  std::vector<TraceEvent> events;
  std::string jsonl;
  RunStats net_totals;  // Network accumulators, packed into a RunStats
  graph::Weight value = 0;

  friend bool operator==(const Artifacts&, const Artifacts&) = default;
};

template <typename Body>
Artifacts run_scenario(const Graph& g, std::uint64_t seed, NetworkConfig cfg,
                       int threads, const Body& body) {
  cfg.threads = threads;
  cfg.clamp_threads = false;  // the sweep must really run at `threads`
  TraceOptions options = TraceOptions::full();
  options.wall_clock = false;  // side channel; never part of the comparison
  Trace trace(std::size_t{1} << 22, options);
  Artifacts a;
  JsonlSink jsonl(a.jsonl);
  trace.add_sink(&jsonl);
  Network net(g, seed, cfg);
  net.attach_trace(&trace);
  a.value = body(net);
  a.events = trace.events();
  a.net_totals.rounds = net.stats().rounds;
  a.net_totals.messages = net.stats().messages;
  a.net_totals.words = net.stats().words;
  return a;
}

// Runs `body` sequentially and at each parallel width, demanding identical
// artifacts. `body` returns one scalar summarizing the algorithm's answer.
template <typename Body>
void expect_bit_identical(const Graph& g, std::uint64_t seed,
                          const NetworkConfig& cfg, const Body& body) {
  const Artifacts ref = run_scenario(g, seed, cfg, 1, body);
  for (int threads : kThreadCounts) {
    const Artifacts got = run_scenario(g, seed, cfg, threads, body);
    EXPECT_EQ(got.value, ref.value) << "threads=" << threads;
    EXPECT_EQ(got.net_totals, ref.net_totals) << "threads=" << threads;
    ASSERT_EQ(got.events.size(), ref.events.size()) << "threads=" << threads;
    EXPECT_TRUE(got.events == ref.events)
        << "trace diverged at threads=" << threads;
    // Byte identity of the streamed JSONL, the format trace_diff consumes.
    EXPECT_EQ(got.jsonl, ref.jsonl) << "JSONL diverged at threads=" << threads;
  }
}

// ---------- full algorithms -------------------------------------------------

TEST(ParallelDeterminism, ExactMwcBitIdenticalAcrossSeeds) {
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    Graph g = test_graph(seed);
    expect_bit_identical(g, seed + 11, NetworkConfig{}, [](Network& net) {
      cycle::MwcResult r = cycle::exact_mwc(net);
      return r.value;
    });
  }
}

TEST(ParallelDeterminism, RandomizedGirthApproxSameRngStreams) {
  // girth_approx draws per-node randomness (sampling, start offsets); the
  // parallel engine must leave every node's private RNG stream untouched,
  // so even the randomized answer is bit-identical.
  support::Rng rng(7);
  Graph g = graph::random_connected(60, 130, WeightRange{1, 1}, rng);
  expect_bit_identical(g, 19, NetworkConfig{}, [](Network& net) {
    return cycle::girth_approx(net).value;
  });
}

TEST(ParallelDeterminism, ShuffledScheduleConsumesSameRandomness) {
  // Adversarial-schedule mode consumes schedule_rng_ per round; the parallel
  // pre-pass must draw the identical stream in the identical order.
  for (std::uint64_t seed = 3; seed < 5; ++seed) {
    Graph g = test_graph(seed);
    NetworkConfig cfg;
    cfg.shuffle_deliveries = true;
    expect_bit_identical(g, seed, cfg, [](Network& net) {
      return cycle::exact_mwc(net).value;
    });
  }
}

TEST(ParallelDeterminism, WiderBandwidth) {
  Graph g = test_graph(9);
  NetworkConfig cfg;
  cfg.bandwidth_words = 4;
  expect_bit_identical(g, 23, cfg, [](Network& net) {
    return cycle::exact_mwc(net).value;
  });
}

// ---------- fault plans -----------------------------------------------------

TEST(ParallelDeterminism, DropsUnderReliableTransport) {
  // Drop decisions consume the injector's RNG stream once per completed
  // message, in engine order; retransmissions multiply the traffic. The
  // whole cascade must replay identically.
  for (std::uint64_t seed = 5; seed < 7; ++seed) {
    Graph g = test_graph(seed, 32, 70);
    NetworkConfig cfg;
    cfg.faults.drop_prob = 0.15;
    cfg.reliable_transport = true;
    expect_bit_identical(g, seed, cfg, [](Network& net) {
      return cycle::exact_mwc(net).value;
    });
  }
}

TEST(ParallelDeterminism, ShuffleAndDropsCombined) {
  Graph g = test_graph(8, 28, 60);
  NetworkConfig cfg;
  cfg.shuffle_deliveries = true;
  cfg.faults.drop_prob = 0.1;
  cfg.reliable_transport = true;
  expect_bit_identical(g, 31, cfg, [](Network& net) {
    return cycle::exact_mwc(net).value;
  });
}

// A chatty gossip protocol whose run survives crash-stops (it never asserts
// global reachability), written to the engine's concurrency contract: all
// mutable state is per-node, no vector<bool>.
class Gossip : public Protocol {
 public:
  explicit Gossip(int n) : best_(static_cast<std::size_t>(n), -1) {}

  void begin(NodeCtx& node) override {
    best_[static_cast<std::size_t>(node.id())] = node.id();
    for (NodeId u : node.comm_neighbors()) {
      node.send(u, Message{static_cast<Word>(node.id())});
    }
  }

  void round(NodeCtx& node) override {
    auto& best = best_[static_cast<std::size_t>(node.id())];
    std::int64_t incoming = best;
    for (const Delivery& m : node.inbox()) {
      incoming = std::max<std::int64_t>(incoming,
                                        static_cast<std::int64_t>(m.msg[0]));
    }
    if (incoming <= best) return;
    best = incoming;
    for (NodeId u : node.comm_neighbors()) {
      node.send(u, Message{static_cast<Word>(incoming)});
    }
  }

  std::int64_t sum() const {
    std::int64_t s = 0;
    for (std::int64_t b : best_) s += b;
    return s;
  }

 private:
  std::vector<std::int64_t> best_;
};

TEST(ParallelDeterminism, StallsAndCrashes) {
  // Crash-stops change the active-node filter and vaporize queues; stalls
  // freeze directions mid-round. Both run through the sequential merge
  // phases and must replay exactly (kStall/kCrash/kDrop trace events
  // included in the comparison).
  Graph g = test_graph(12, 36, 80);
  NetworkConfig cfg;
  cfg.faults.stalls.push_back(StallFault{0, g.out(0).empty() ? 1 : g.out(0)[0].to, 1, 12});
  cfg.faults.crashes.push_back(CrashFault{5, 3});
  cfg.faults.crashes.push_back(CrashFault{17, 9});
  expect_bit_identical(g, 41, cfg, [&](Network& net) {
    Gossip proto(net.n());
    RunResult r = run_protocol_result(net, proto);
    EXPECT_EQ(r.outcome, RunOutcome::kCrashed);
    return static_cast<graph::Weight>(proto.sum()) +
           static_cast<graph::Weight>(r.stats.dropped_words);
  });
}

// ---------- wake-heavy / weight-delay scheduling ----------------------------

TEST(ParallelDeterminism, WeightDelayBfsWakeHeavy) {
  // kWeightDelay holds sends in per-node outboxes released by wake_at - the
  // wake-buffering seam gets exercised hard, including wakes from nodes with
  // empty inboxes.
  support::Rng rng(21);
  Graph g = graph::random_connected(55, 120, WeightRange{1, 7}, rng);
  expect_bit_identical(g, 29, NetworkConfig{}, [](Network& net) {
    MultiBfsParams params;
    params.sources = {2, 9, 33};
    params.mode = DelayMode::kWeightDelay;
    MultiBfs bfs = run_multi_bfs(net, std::move(params));
    graph::Weight sum = 0;
    for (NodeId v = 0; v < net.n(); ++v) {
      for (int i = 0; i < 3; ++i) {
        if (bfs.dist(v, i) != graph::kInfWeight) sum += bfs.dist(v, i);
      }
    }
    return sum;
  });
}

TEST(ParallelDeterminism, ThreadCountAboveHardwareStillIdentical) {
  // Oversubscription changes scheduling wildly at the OS level; results may
  // not care.
  Graph g = test_graph(14, 24, 50);
  const Artifacts ref = run_scenario(g, 3, NetworkConfig{}, 1, [](Network& net) {
    return cycle::exact_mwc(net).value;
  });
  const Artifacts got = run_scenario(g, 3, NetworkConfig{}, 16, [](Network& net) {
    return cycle::exact_mwc(net).value;
  });
  EXPECT_TRUE(got == ref);
}

}  // namespace
}  // namespace mwc::congest
