// Consolidated round-budget regression tests: every Table-1 algorithm at a
// fixed size against its theory bound with the polylog factors spelled out.
// These guard the round *complexity* (not just correctness) against
// regressions - e.g. a broken pipeline priority or a lost hop cap would
// blow these budgets long before the exactness tests notice.
#include <gtest/gtest.h>

#include <cmath>

#include "congest/network.h"
#include "graph/generators.h"
#include "graph/sequential.h"
#include "ksssp/skeleton_sssp.h"
#include "mwc/exact.h"
#include "mwc/girth_prt.h"
#include "mwc/weighted_mwc.h"
#include "support/rng.h"

namespace mwc::cycle {
namespace {

using congest::Network;
using graph::Graph;
using graph::WeightRange;

double log_n(int n) { return std::log(static_cast<double>(n)); }

TEST(RoundBounds, ExactMwcWeightedNearLinear) {
  // The async Bellman-Ford APSP substitute must stay near-linear on random
  // weighted graphs (DESIGN.md substitution 2).
  const int n = 300;
  support::Rng rng(1);
  Graph g = graph::random_connected(n, 2 * n, WeightRange{1, 12}, rng);
  Network net(g, 2);
  MwcResult result = exact_mwc(net);
  EXPECT_LE(result.stats.rounds, static_cast<std::uint64_t>(8 * n));
}

TEST(RoundBounds, UndirectedWeightedApproxBudget) {
  // Theorem 1.4.C: O~(n^(2/3) + D); the O~ holds log(hW) ladder levels and
  // the (1 + 2/eps) tick budget.
  const int n = 256;
  const double eps_half = 0.25;  // epsilon = 0.5 halved internally
  support::Rng rng(3);
  Graph g = graph::random_connected(n, 2 * n, WeightRange{1, 12}, rng);
  const int diam = graph::seq::communication_diameter(g);
  Network net(g, 4);
  MwcResult result = undirected_weighted_mwc(net);
  const double h = std::pow(n, 2.0 / 3.0);
  const double levels = std::log2(h * 12) + 1;
  const double budget =
      3.0 * levels * ((1.0 + 2.0 / eps_half) * h + 3 * std::sqrt(n) * log_n(n)) +
      20.0 * (std::sqrt(n) * log_n(n) + diam);
  EXPECT_LE(static_cast<double>(result.stats.rounds), budget);
}

TEST(RoundBounds, DirectedWeightedApproxBudget) {
  // Theorem 1.2.D: O~(n^(4/5) + D) with the same ladder bookkeeping.
  const int n = 128;
  const double eps_half = 0.25;
  support::Rng rng(5);
  Graph g = graph::random_strongly_connected(n, 3 * n, WeightRange{1, 10}, rng);
  const int diam = graph::seq::communication_diameter(g);
  Network net(g, 6);
  MwcResult result = directed_weighted_mwc(net);
  const double h = std::pow(n, 0.6);
  const double n45 = std::pow(n, 0.8);
  const double levels = std::log2(h * 10) + 1;
  const double budget =
      6.0 * levels * (n45 * log_n(n) + (1.0 + 2.0 / eps_half) * h) +
      20.0 * (n45 * log_n(n) * log_n(n) + diam);
  EXPECT_LE(static_cast<double>(result.stats.rounds), budget);
}

TEST(RoundBounds, GirthPrtSqrtNgBudget) {
  // [44]: O~(sqrt(n g) + D) - on a girth-3 instance the doubling stops at
  // the first phase, so sqrt(4 n) with polylog slack.
  const int n = 400;
  support::Rng rng(7);
  Graph g = graph::random_connected(n, 4 * n, WeightRange{1, 1}, rng);
  ASSERT_LE(graph::seq::girth(g), 4);
  const int diam = graph::seq::communication_diameter(g);
  Network net(g, 8);
  MwcResult result = girth_prt(net);
  EXPECT_LE(static_cast<double>(result.stats.rounds),
            12.0 * (std::sqrt(4.0 * n) * log_n(n) + diam));
}

TEST(RoundBounds, SkeletonSsspSqrtNkBudget) {
  // Theorem 1.6.B at k = n^(1/3): O~(n^(2/3) + D) with ladder levels.
  const int n = 512;
  support::Rng rng(9);
  Graph g = graph::random_strongly_connected(n, 3 * n, WeightRange{1, 16}, rng);
  const int diam = graph::seq::communication_diameter(g);
  ksssp::SkeletonSsspParams params;
  for (int i = 0; i < 8; ++i) params.sources.push_back(i * 37 % n);
  std::sort(params.sources.begin(), params.sources.end());
  params.sources.erase(
      std::unique(params.sources.begin(), params.sources.end()),
      params.sources.end());
  params.epsilon = 0.25;
  Network net(g, 10);
  ksssp::KSsspResult result = skeleton_k_source_sssp(net, params);
  const double h = std::sqrt(512.0 * 8.0);
  const double levels = std::log2(h * 16) + 1;
  const double s_size = 2.0 * log_n(n) * n / h;
  const double budget = 3.0 * levels * (1.0 + 2.0 / 0.25) * h +
                        4.0 * (s_size * s_size + 8 * s_size) + 20.0 * diam;
  EXPECT_LE(static_cast<double>(result.stats.rounds), budget);
}

TEST(RoundBounds, TinyGraphsDegradeGracefully) {
  // n = 2..4: every algorithm terminates and is correct on minimal inputs.
  {
    std::vector<graph::Edge> edges{{0, 1, 3}, {1, 0, 4}};
    Graph g = Graph::directed(2, edges);
    Network net(g, 1);
    EXPECT_EQ(exact_mwc(net).value, 7);
  }
  {
    std::vector<graph::Edge> edges{{0, 1, 2}, {1, 2, 2}, {2, 0, 2}};
    Graph g = Graph::undirected(3, edges);
    Network net(g, 1);
    MwcResult exact = exact_mwc(net);
    EXPECT_EQ(exact.value, 6);
    EXPECT_EQ(exact.witness.size(), 3u);
    Network net2(g, 1);
    MwcResult approx = undirected_weighted_mwc(net2);
    EXPECT_GE(approx.value, 6);
    EXPECT_LE(approx.value, 15);
  }
  {
    // Two isolated-but-linked nodes, no cycle at all.
    std::vector<graph::Edge> edges{{0, 1, 5}};
    Graph g = Graph::undirected(2, edges);
    Network net(g, 1);
    EXPECT_EQ(exact_mwc(net).value, graph::kInfWeight);
  }
}

}  // namespace
}  // namespace mwc::cycle
