// Adversarial-schedule fuzzing: CONGEST fixes which *round* a message
// arrives, not its position in the inbox or the order nodes step within a
// round. Correct protocols must produce identical results under randomized
// within-round schedules. These tests rerun the main algorithms with
// NetworkConfig::shuffle_deliveries across seeds and demand unchanged
// (or still-guaranteed) outputs.
#include <gtest/gtest.h>

#include "congest/faults.h"
#include "congest/governor.h"
#include "congest/multi_bfs.h"
#include "congest/network.h"
#include "graph/generators.h"
#include "graph/sequential.h"
#include "mwc/api.h"
#include "mwc/exact.h"
#include "mwc/witness.h"
#include "support/rng.h"

namespace mwc::cycle {
namespace {

using congest::Network;
using congest::NetworkConfig;
using graph::Graph;
using graph::NodeId;
using graph::Weight;
using graph::WeightRange;

NetworkConfig shuffled(int threads = 1) {
  NetworkConfig cfg;
  cfg.shuffle_deliveries = true;
  cfg.threads = threads;
  cfg.clamp_threads = false;  // the fuzz must really run at `threads`
  return cfg;
}

// The full adversary: randomized within-round schedules AND every link
// dropping messages (masked by the reliable transport). Algorithms must
// still produce exact answers.
NetworkConfig shuffled_and_lossy(double drop_prob, int threads = 1) {
  NetworkConfig cfg = shuffled(threads);
  cfg.faults.drop_prob = drop_prob;
  cfg.reliable_transport = true;
  return cfg;
}

TEST(ScheduleFuzz, MultiBfsExactUnderAnySchedule) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    support::Rng rng(seed);
    Graph g = graph::random_strongly_connected(70, 200, WeightRange{1, 1}, rng);
    Network net(g, seed + 5, shuffled());
    congest::MultiBfsParams params;
    params.sources = {0, 7, 21};
    congest::MultiBfs bfs = run_multi_bfs(net, params);
    for (int i = 0; i < 3; ++i) {
      auto ref = graph::seq::bfs_hops(g, params.sources[static_cast<std::size_t>(i)]);
      for (NodeId v = 0; v < 70; ++v) {
        ASSERT_EQ(bfs.dist(v, i), ref[static_cast<std::size_t>(v)])
            << "seed " << seed;
      }
    }
  }
}

TEST(ScheduleFuzz, ExactMwcInvariantToSchedule) {
  for (std::uint64_t seed = 10; seed < 16; ++seed) {
    support::Rng rng(seed);
    Graph g = graph::random_connected(50, 110, WeightRange{1, 9}, rng);
    Weight ref = graph::seq::mwc(g);
    Network plain(g, 3);
    Network fuzzed(g, 3, shuffled());
    EXPECT_EQ(exact_mwc(plain).value, ref) << "seed " << seed;
    EXPECT_EQ(exact_mwc(fuzzed).value, ref) << "seed " << seed;
  }
}

TEST(ScheduleFuzz, MultiBfsExactUnderScheduleAndDrops) {
  for (std::uint64_t seed = 40; seed < 44; ++seed) {
    support::Rng rng(seed);
    Graph g = graph::random_connected(40, 90, WeightRange{1, 1}, rng);
    Network net(g, seed + 5, shuffled_and_lossy(0.2));
    congest::MultiBfsParams params;
    params.sources = {0, 11};
    congest::MultiBfs bfs = run_multi_bfs(net, params);
    for (int i = 0; i < 2; ++i) {
      auto ref = graph::seq::bfs_hops(g, params.sources[static_cast<std::size_t>(i)]);
      for (NodeId v = 0; v < 40; ++v) {
        ASSERT_EQ(bfs.dist(v, i), ref[static_cast<std::size_t>(v)])
            << "seed " << seed;
      }
    }
  }
}

TEST(ScheduleFuzz, ExactMwcInvariantToScheduleAndDrops) {
  for (std::uint64_t seed = 50; seed < 53; ++seed) {
    support::Rng rng(seed);
    Graph g = graph::random_connected(28, 60, WeightRange{1, 9}, rng);
    Weight ref = graph::seq::mwc(g);
    Network net(g, 3, shuffled_and_lossy(0.15));
    MwcResult result = exact_mwc(net);
    EXPECT_EQ(result.value, ref) << "seed " << seed;
  }
}

TEST(ScheduleFuzz, ApproximationsKeepGuaranteesUnderAnySchedule) {
  // Randomized algorithms may legally return different *valid* answers under
  // a different schedule; the guarantee must hold either way.
  for (std::uint64_t seed = 20; seed < 26; ++seed) {
    support::Rng rng(seed);
    const bool directed = seed % 2 == 0;
    Graph g = directed
                  ? graph::random_strongly_connected(70, 210, WeightRange{1, 1}, rng)
                  : graph::random_connected(70, 140, WeightRange{1, 8}, rng);
    Weight exact = graph::seq::mwc(g);
    Network net(g, seed, shuffled());
    ApproxMwcOptions opt;
    MwcResult result = approximate_mwc(net, opt);
    EXPECT_GE(result.value, exact) << "seed " << seed;
    EXPECT_LE(static_cast<double>(result.value),
              approximate_mwc_guarantee(net, opt) * static_cast<double>(exact) +
                  1e-9)
        << "seed " << seed;
  }
}

TEST(ScheduleFuzz, WeightDelayBfsExactUnderAnySchedule) {
  for (std::uint64_t seed = 30; seed < 34; ++seed) {
    support::Rng rng(seed);
    Graph g = graph::random_connected(50, 120, WeightRange{1, 7}, rng);
    Network net(g, seed, shuffled());
    congest::MultiBfsParams params;
    params.sources = {3};
    params.mode = congest::DelayMode::kWeightDelay;
    congest::MultiBfs bfs = run_multi_bfs(net, std::move(params));
    auto ref = graph::seq::dijkstra(g, 3);
    for (NodeId v = 0; v < 50; ++v) {
      ASSERT_EQ(bfs.dist(v, 0), ref[static_cast<std::size_t>(v)]) << "seed " << seed;
    }
  }
}

// The fuzzer itself, run on the parallel engine: correct results under
// adversarial schedules must survive multi-threaded execution too (and the
// engine guarantees they are bit-identical - see parallel_determinism_test).
TEST(ScheduleFuzz, ExactMwcUnderScheduleOnParallelEngine) {
  for (std::uint64_t seed = 60; seed < 63; ++seed) {
    support::Rng rng(seed);
    Graph g = graph::random_connected(50, 110, WeightRange{1, 9}, rng);
    Weight ref = graph::seq::mwc(g);
    for (int threads : {2, 4}) {
      Network net(g, 3, shuffled(threads));
      EXPECT_EQ(exact_mwc(net).value, ref)
          << "seed " << seed << " threads " << threads;
    }
  }
}

TEST(ScheduleFuzz, ExactMwcUnderScheduleAndDropsOnParallelEngine) {
  for (std::uint64_t seed = 70; seed < 72; ++seed) {
    support::Rng rng(seed);
    Graph g = graph::random_connected(28, 60, WeightRange{1, 9}, rng);
    Weight ref = graph::seq::mwc(g);
    Network net(g, 3, shuffled_and_lossy(0.15, 4));
    EXPECT_EQ(exact_mwc(net).value, ref) << "seed " << seed;
  }
}

// ---------- fuzzed corruption + crash/recovery schedules ---------------------

// The self-certification contract under a randomized fault adversary: for
// whatever corruption rates, targeted windows, and crash/recovery
// schedules are thrown at solve() (over the checksumming transport), a
// report whose value differs from the sequential oracle must NEVER be
// labeled certified; every certified report is exactly right; every
// attached witness validates against the input graph; and degraded values
// are genuine cycle weights (upper bounds), never underestimates.
TEST(ScheduleFuzz, FuzzedFaultSchedulesNeverCertifyAWrongAnswer) {
  int certified_runs = 0;
  int degraded_runs = 0;
  for (std::uint64_t seed = 80; seed < 96; ++seed) {
    support::Rng rng(seed);
    const int n = 20 + static_cast<int>(rng.next_below(12));
    const int m = n + 10 + static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n)));
    Graph g = graph::random_connected(n, m, WeightRange{1, 9}, rng);
    const Weight oracle = graph::seq::mwc(g);

    NetworkConfig cfg;
    cfg.shuffle_deliveries = true;
    cfg.reliable_transport = true;
    cfg.max_rounds_per_run = 200'000;
    cfg.faults.corrupt_prob = 0.08 * rng.next_double();
    cfg.faults.drop_prob = 0.15 * rng.next_double();
    if (rng.next_bool(0.5)) {
      // A targeted corruption window on a random link direction.
      const NodeId a = static_cast<NodeId>(rng.next_below(
          static_cast<std::uint64_t>(n)));
      const NodeId b = g.out(a)[0].to;
      const std::uint64_t first = rng.next_below(40);
      cfg.faults.corrupt_windows.push_back(
          congest::CorruptFault{a, b, first, first + rng.next_below(200)});
    }
    // Half the schedules crash-and-recover a node mid-run: those runs lose
    // volatile state and must come back degraded, never certified.
    const bool with_crash = seed % 2 == 1;
    if (with_crash) {
      const NodeId victim = static_cast<NodeId>(rng.next_below(
          static_cast<std::uint64_t>(n)));
      const std::uint64_t at = rng.next_below(50);
      cfg.faults.crashes.push_back(congest::CrashFault{victim, at});
      cfg.faults.recovers.push_back(
          congest::RecoverFault{victim, at + 1 + rng.next_below(150)});
    }

    Network net(g, seed, cfg);
    SolveOptions opts;
    opts.mode = SolveMode::kExact;
    MwcReport report = cycle::solve(net, opts);

    // The hard line: a wrong value is never certified.
    if (report.result.value != oracle) {
      EXPECT_FALSE(report.certified()) << "seed " << seed;
    }
    switch (report.status) {
      case SolveStatus::kCertified:
        ++certified_runs;
        EXPECT_FALSE(with_crash) << "seed " << seed;
        EXPECT_EQ(report.result.value, oracle) << "seed " << seed;
        EXPECT_FALSE(report.result.witness.empty()) << "seed " << seed;
        break;
      case SolveStatus::kApproxCertified:
        ADD_FAILURE() << "exact mode cannot approx-certify (seed " << seed << ")";
        break;
      case SolveStatus::kDegraded:
        ++degraded_runs;
        if (report.result.value != graph::kInfWeight) {
          EXPECT_GE(report.result.value, oracle) << "seed " << seed;
        }
        break;
      case SolveStatus::kFailed:
        EXPECT_FALSE(report.ok()) << "seed " << seed;
        break;
    }
    if (!report.result.witness.empty()) {
      Weight total = 0;
      EXPECT_TRUE(detail::validate_cycle(g, report.result.witness, &total))
          << "seed " << seed;
      EXPECT_LE(total, report.result.value) << "seed " << seed;
    }
    if (with_crash) {
      EXPECT_FALSE(report.certified()) << "seed " << seed;
      EXPECT_GT(report.fault_ledger().crashes, 0u) << "seed " << seed;
    }
  }
  // The fuzz must exercise both sides of the line, not collapse into one.
  EXPECT_GT(certified_runs, 0);
  EXPECT_GT(degraded_runs, 0);
}

// The governance twin of the fault fuzz above: randomized round/word
// budgets truncate solves at arbitrary points under adversarial schedules.
// A budget-truncated solve must NEVER certify a wrong answer - certified
// implies exactly the oracle - and whatever it does return must bracket
// the truth with its anytime bounds.
TEST(ScheduleFuzz, FuzzedBudgetTruncationsNeverCertifyAWrongAnswer) {
  int stopped_runs = 0;
  int finished_runs = 0;
  for (std::uint64_t seed = 100; seed < 120; ++seed) {
    support::Rng rng(seed);
    const int n = 20 + static_cast<int>(rng.next_below(12));
    const int m = n + 10 +
                  static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n)));
    Graph g = graph::random_connected(n, m, WeightRange{1, 9}, rng);
    const Weight oracle = graph::seq::mwc(g);

    congest::Budget budget;
    if (seed % 2 == 0) {
      budget.max_rounds = 1 + rng.next_below(400);
    } else {
      budget.max_words = 1 + rng.next_below(60'000);
    }
    congest::Governor governor(budget);
    Network net(g, seed, shuffled());
    SolveOptions opts;
    opts.mode = SolveMode::kExact;
    opts.governor = &governor;
    MwcReport report = cycle::solve(net, opts);

    // The hard line: truncation never manufactures a wrong certified answer.
    if (report.certified()) {
      EXPECT_EQ(report.result.value, oracle) << "seed " << seed;
      EXPECT_EQ(report.stop.reason, congest::StopReason::kNone)
          << "seed " << seed;
    }
    EXPECT_LE(report.lower_bound, oracle) << "seed " << seed;
    EXPECT_GE(report.upper_bound, oracle) << "seed " << seed;
    if (report.result.value != graph::kInfWeight) {
      // Salvaged values are real cycle weights: upper bounds, never under.
      EXPECT_GE(report.result.value, oracle) << "seed " << seed;
    }
    if (!report.result.witness.empty()) {
      Weight total = 0;
      EXPECT_TRUE(detail::validate_cycle(g, report.result.witness, &total))
          << "seed " << seed;
      EXPECT_LE(total, report.result.value) << "seed " << seed;
    }
    if (report.stop.reason != congest::StopReason::kNone) {
      EXPECT_FALSE(report.certified()) << "seed " << seed;
      ++stopped_runs;
    } else {
      ++finished_runs;
    }
  }
  // The fuzz must exercise both truncated and completed solves.
  EXPECT_GT(stopped_runs, 0);
  EXPECT_GT(finished_runs, 0);
}

TEST(BandwidthRobustness, ResultsUnchangedAcrossB) {
  // CONGEST(B): wider links change rounds, never answers.
  support::Rng rng(40);
  Graph g = graph::random_connected(60, 130, WeightRange{1, 9}, rng);
  Weight ref = graph::seq::mwc(g);
  std::uint64_t prev_rounds = ~std::uint64_t{0};
  for (int bw : {1, 2, 8}) {
    NetworkConfig cfg;
    cfg.bandwidth_words = bw;
    Network net(g, 3, cfg);
    MwcResult result = exact_mwc(net);
    EXPECT_EQ(result.value, ref) << "B=" << bw;
    EXPECT_LE(result.stats.rounds, prev_rounds) << "B=" << bw;
    prev_rounds = result.stats.rounds;
  }
}

TEST(BandwidthRobustness, ApproximationGuaranteeAcrossB) {
  support::Rng rng(41);
  Graph g = graph::random_strongly_connected(60, 180, WeightRange{1, 1}, rng);
  Weight exact = graph::seq::mwc(g);
  for (int bw : {1, 4}) {
    NetworkConfig cfg;
    cfg.bandwidth_words = bw;
    Network net(g, 5, cfg);
    ApproxMwcOptions opt;
    MwcResult result = approximate_mwc(net, opt);
    EXPECT_GE(result.value, exact) << "B=" << bw;
    EXPECT_LE(result.value, 2 * exact) << "B=" << bw;
  }
}

}  // namespace
}  // namespace mwc::cycle
