// Tests for the sequential reference algorithms, including brute-force
// cross-checks of the MWC references (the references are the ground truth
// for every distributed test, so they get their own belt-and-braces layer).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/sequential.h"
#include "support/rng.h"

namespace mwc::graph {
namespace {

// Brute force MWC: enumerate simple cycles by DFS from every start vertex
// (smallest-id vertex on the cycle), feasible for tiny graphs.
Weight brute_force_mwc(const Graph& g) {
  Weight best = kInfWeight;
  const int n = g.node_count();
  std::vector<bool> on_path(static_cast<std::size_t>(n), false);

  // DFS paths starting and ending at `start` using only vertices >= start,
  // so every cycle is enumerated exactly from its smallest vertex.
  for (NodeId start = 0; start < n; ++start) {
    std::vector<NodeId> path{start};
    on_path.assign(static_cast<std::size_t>(n), false);
    on_path[static_cast<std::size_t>(start)] = true;
    auto dfs = [&](auto&& self, NodeId v, Weight w) -> void {
      for (const Arc& a : g.out(v)) {
        if (a.to == start) {
          // Undirected cycles need >= 3 edges (closing a 1- or 2-vertex path
          // would reuse an edge); directed 2-cycles are genuine.
          if (!g.is_directed() && path.size() < 3) continue;
          best = std::min(best, w + a.w);
          continue;
        }
        if (a.to < start || on_path[static_cast<std::size_t>(a.to)]) continue;
        if (w + a.w >= best) continue;
        on_path[static_cast<std::size_t>(a.to)] = true;
        path.push_back(a.to);
        self(self, a.to, w + a.w);
        path.pop_back();
        on_path[static_cast<std::size_t>(a.to)] = false;
      }
    };
    dfs(dfs, start, 0);
  }
  return best;
}

TEST(BfsHops, PathGraph) {
  std::vector<Edge> edges{{0, 1, 1}, {1, 2, 1}, {2, 3, 1}};
  Graph g = Graph::undirected(4, edges);
  auto d = seq::bfs_hops(g, 0);
  EXPECT_EQ(d, (std::vector<Weight>{0, 1, 2, 3}));
}

TEST(BfsHops, RespectsDirection) {
  std::vector<Edge> edges{{0, 1, 1}, {1, 2, 1}};
  Graph g = Graph::directed(3, edges);
  auto d = seq::bfs_hops(g, 2);
  EXPECT_EQ(d[0], kInfWeight);
  EXPECT_EQ(d[2], 0);
}

TEST(Dijkstra, PrefersLightPath) {
  std::vector<Edge> edges{{0, 1, 10}, {0, 2, 1}, {2, 1, 2}};
  Graph g = Graph::undirected(3, edges);
  auto d = seq::dijkstra(g, 0);
  EXPECT_EQ(d[1], 3);
  EXPECT_EQ(d[2], 1);
}

TEST(HopLimitedDist, LimitsHops) {
  // 0 -> 1 -> 2 with cheap 2-hop route, expensive direct edge.
  std::vector<Edge> edges{{0, 1, 1}, {1, 2, 1}, {0, 2, 10}};
  Graph g = Graph::directed(3, edges);
  EXPECT_EQ(seq::hop_limited_dist(g, 0, 1)[2], 10);
  EXPECT_EQ(seq::hop_limited_dist(g, 0, 2)[2], 2);
  EXPECT_EQ(seq::hop_limited_dist(g, 0, 0)[2], kInfWeight);
}

TEST(HopLimitedDist, MatchesDijkstraWithLargeBudget) {
  support::Rng rng(21);
  Graph g = random_connected(30, 70, WeightRange{1, 9}, rng);
  for (NodeId s = 0; s < 5; ++s) {
    EXPECT_EQ(seq::hop_limited_dist(g, s, g.node_count()), seq::dijkstra(g, s));
  }
}

TEST(Diameter, CycleGraph) {
  support::Rng rng(1);
  Graph g = cycle_with_chords(10, 0, WeightRange{1, 1}, rng);
  EXPECT_EQ(seq::communication_diameter(g), 5);
}

TEST(Mwc, TriangleWeighted) {
  std::vector<Edge> edges{{0, 1, 2}, {1, 2, 3}, {2, 0, 4}, {0, 3, 100}};
  Graph g = Graph::undirected(4, edges);
  EXPECT_EQ(seq::mwc(g), 9);
}

TEST(Mwc, AcyclicReturnsInfinity) {
  std::vector<Edge> edges{{0, 1, 2}, {1, 2, 3}};
  EXPECT_EQ(seq::mwc(Graph::undirected(3, edges)), kInfWeight);
  EXPECT_EQ(seq::mwc(Graph::directed(3, edges)), kInfWeight);
}

TEST(Mwc, DirectedTwoCycle) {
  std::vector<Edge> edges{{0, 1, 2}, {1, 0, 5}};
  Graph g = Graph::directed(2, edges);
  EXPECT_EQ(seq::mwc(g), 7);
}

TEST(Mwc, PendantPathDoesNotFoolReference) {
  // The classic trap: x - a - triangle; naive d(x,u)+d(x,v)+w undershoots.
  std::vector<Edge> edges{{3, 0, 1}, {0, 1, 10}, {1, 2, 10}, {2, 0, 10}};
  Graph g = Graph::undirected(4, edges);
  EXPECT_EQ(seq::mwc(g), 30);
}

TEST(Mwc, MatchesBruteForceUndirectedWeighted) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    support::Rng rng(seed);
    Graph g = random_connected(12, 20, WeightRange{1, 8}, rng);
    EXPECT_EQ(seq::mwc(g), brute_force_mwc(g)) << "seed " << seed;
  }
}

TEST(Mwc, MatchesBruteForceDirectedWeighted) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    support::Rng rng(seed);
    Graph g = random_strongly_connected(12, 30, WeightRange{1, 8}, rng);
    EXPECT_EQ(seq::mwc(g), brute_force_mwc(g)) << "seed " << seed;
  }
}

TEST(Mwc, MatchesBruteForceUnweighted) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    support::Rng rng(seed);
    Graph gu = random_connected(12, 18, WeightRange{1, 1}, rng);
    EXPECT_EQ(seq::mwc(gu), brute_force_mwc(gu)) << "seed " << seed;
    Graph gd = random_strongly_connected(12, 26, WeightRange{1, 1}, rng);
    EXPECT_EQ(seq::mwc(gd), brute_force_mwc(gd)) << "seed " << seed;
  }
}

TEST(HopLimitedMwc, RestrictsCycleLength) {
  // Square (4 edges, weight 4) and a heavy triangle (weight 30).
  std::vector<Edge> edges{{0, 1, 1}, {1, 2, 1}, {2, 3, 1}, {3, 0, 1},
                          {0, 4, 10}, {4, 5, 10}, {5, 0, 10}};
  Graph g = Graph::undirected(6, edges);
  EXPECT_EQ(seq::hop_limited_mwc(g, 3), 30);
  EXPECT_EQ(seq::hop_limited_mwc(g, 4), 4);
}

TEST(HopLimitedMwc, LargeBudgetMatchesMwc) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    support::Rng rng(seed);
    Graph g = random_connected(15, 30, WeightRange{1, 5}, rng);
    EXPECT_EQ(seq::hop_limited_mwc(g, g.node_count()), seq::mwc(g));
    Graph gd = random_strongly_connected(15, 40, WeightRange{1, 5}, rng);
    EXPECT_EQ(seq::hop_limited_mwc(gd, gd.node_count()), seq::mwc(gd));
  }
}

TEST(Girth, IgnoresWeights) {
  std::vector<Edge> edges{{0, 1, 50}, {1, 2, 50}, {2, 0, 50},
                          {0, 3, 1},  {3, 4, 1},  {4, 0, 1},  {3, 2, 1}};
  Graph g = Graph::undirected(5, edges);
  EXPECT_EQ(seq::girth(g), 3);
}

TEST(Apsp, SymmetricForUndirected) {
  support::Rng rng(33);
  Graph g = random_connected(20, 40, WeightRange{1, 6}, rng);
  auto d = seq::apsp(g);
  for (NodeId u = 0; u < 20; ++u) {
    for (NodeId v = 0; v < 20; ++v) EXPECT_EQ(d[u][v], d[v][u]);
  }
}

}  // namespace
}  // namespace mwc::graph
