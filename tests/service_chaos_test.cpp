// Chaos soak for the solve service: a 200+ request corpus crossing graph
// families with fault plans (drops, corruption, duplication, crash,
// crash+recover, budget kills, round caps) runs through concurrent worker
// pools. Invariants under chaos: no request lost or duplicated, every
// admitted request terminates with a typed certified-or-bounded response,
// certified answers equal the sequential oracle, brackets always contain
// the true MWC, response bytes are identical across worker counts, and
// cached re-solves are byte-identical to cold ones. A SIGTERM lands
// mid-batch and must drain - not drop - in-flight work.
#include <gtest/gtest.h>

#include <chrono>
#include <csignal>
#include <cstdint>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "congest/governor.h"
#include "graph/generators.h"
#include "graph/sequential.h"
#include "mwc/service.h"
#include "support/rng.h"

namespace mwc::service {
namespace {

using graph::Graph;

struct BaseGraph {
  Graph graph;
  graph::Weight oracle;
};

std::vector<BaseGraph> base_graphs() {
  std::vector<BaseGraph> out;
  for (std::uint64_t s = 1; s <= 4; ++s) {
    support::Rng rng(s * 1000 + 7);
    Graph g = graph::random_connected(12 + static_cast<int>(s) * 2,
                                      24 + static_cast<int>(s) * 4,
                                      graph::WeightRange{1, 9}, rng);
    out.push_back(BaseGraph{g, graph::seq::mwc(g)});
  }
  for (std::uint64_t s = 1; s <= 2; ++s) {
    support::Rng rng(s * 77 + 3);
    Graph g = graph::cycle_with_chords(16, 5, graph::WeightRange{1, 5}, rng);
    out.push_back(BaseGraph{g, graph::seq::mwc(g)});
  }
  return out;
}

// Nine fault plans exercised per graph; index is part of the request id.
congest::FaultPlan fault_plan(int kind) {
  congest::FaultPlan plan;
  switch (kind) {
    case 0:  // clean
      break;
    case 1:
      plan.drop_prob = 0.2;
      break;
    case 2:
      plan.dup_prob = 0.25;
      break;
    case 3:
      plan.corrupt_prob = 0.05;
      break;
    case 4:  // combined link chaos
      plan.drop_prob = 0.1;
      plan.dup_prob = 0.1;
      plan.corrupt_prob = 0.02;
      break;
    case 5:  // crash-stop, never returns
      plan.crashes.push_back(congest::CrashFault{2, 3});
      break;
    case 6:  // crash then recover
      plan.crashes.push_back(congest::CrashFault{1, 2});
      plan.recovers.push_back(congest::RecoverFault{1, 30});
      break;
    default:
      break;
  }
  return plan;
}

// kind 7 = round-budget kill, kind 8 = tiny per-run round cap; both are
// applied on the request rather than the fault plan.
constexpr int kPlanKinds = 9;

std::vector<ServiceRequest> build_corpus(int copies) {
  std::vector<BaseGraph> graphs = base_graphs();
  std::vector<ServiceRequest> corpus;
  int serial = 0;
  for (int copy = 0; copy < copies; ++copy) {
    for (std::size_t gi = 0; gi < graphs.size(); ++gi) {
      for (int kind = 0; kind < kPlanKinds; ++kind) {
        ServiceRequest rq;
        rq.id = "soak-" + std::to_string(serial++);
        rq.graph = graphs[gi].graph;
        rq.seed = static_cast<std::uint64_t>(serial) * 131 + 1;
        rq.mode = (serial % 3 == 0) ? cycle::SolveMode::kExact
                  : (serial % 3 == 1) ? cycle::SolveMode::kAuto
                                      : cycle::SolveMode::kApprox;
        rq.epsilon = 0.5;
        rq.faults = fault_plan(kind);
        if (kind == 7) rq.budget.max_rounds = 8;
        if (kind == 8) rq.max_rounds = 4;
        corpus.push_back(std::move(rq));
      }
    }
  }
  return corpus;
}

std::vector<graph::Weight> corpus_oracles(int copies) {
  std::vector<BaseGraph> graphs = base_graphs();
  std::vector<graph::Weight> oracles;
  for (int copy = 0; copy < copies; ++copy) {
    for (std::size_t gi = 0; gi < graphs.size(); ++gi) {
      for (int kind = 0; kind < kPlanKinds; ++kind) {
        oracles.push_back(graphs[gi].oracle);
      }
    }
  }
  return oracles;
}

std::string render(const std::vector<ServiceResponse>& rs) {
  std::string all;
  for (const ServiceResponse& r : rs) {
    all += r.to_jsonl();
    all += '\n';
  }
  return all;
}

TEST(ChaosSoak, TwoHundredRequestsUnderConcurrentChaos) {
  const int kCopies = 4;  // 4 x 6 graphs x 9 plans = 216 requests
  std::vector<ServiceRequest> corpus = build_corpus(kCopies);
  std::vector<graph::Weight> oracles = corpus_oracles(kCopies);
  ASSERT_GE(corpus.size(), 200u);
  ASSERT_EQ(corpus.size(), oracles.size());

  ServiceConfig cfg;
  cfg.workers = 4;
  SolveService svc(cfg);
  std::vector<ServiceResponse> rs = svc.run_batch(corpus);

  // No request lost and no request duplicated: one response per id,
  // delivered in submission order.
  ASSERT_EQ(rs.size(), corpus.size());
  std::set<std::string> ids;
  for (std::size_t i = 0; i < rs.size(); ++i) {
    EXPECT_EQ(rs[i].id, corpus[i].id);
    EXPECT_TRUE(ids.insert(rs[i].id).second) << "duplicated " << rs[i].id;
  }

  // Every admitted request terminated with a typed certified-or-bounded
  // response; nothing was mis-certified.
  for (std::size_t i = 0; i < rs.size(); ++i) {
    const ServiceResponse& r = rs[i];
    ASSERT_EQ(r.admission, Admission::kAdmitted) << r.id;
    ASSERT_FALSE(r.attempts.empty()) << r.id;
    if (r.status == cycle::SolveStatus::kCertified) {
      EXPECT_EQ(r.value, oracles[i]) << r.id;
    } else if (r.status == cycle::SolveStatus::kApproxCertified) {
      // (1+eps)-certified: value is a real cycle within the guarantee.
      EXPECT_GE(r.value, oracles[i]) << r.id;
      EXPECT_LE(static_cast<double>(r.value),
                r.guarantee * static_cast<double>(oracles[i]) + 1e-9)
          << r.id;
    }
    // The anytime bracket always contains the true MWC.
    EXPECT_LE(r.lower_bound, oracles[i]) << r.id;
    if (r.upper_bound != graph::kInfWeight) {
      EXPECT_GE(r.upper_bound, oracles[i]) << r.id;
    }
    EXPECT_LE(r.lower_bound,
              r.upper_bound == graph::kInfWeight ? oracles[i] : r.upper_bound)
        << r.id;
  }
  EXPECT_EQ(svc.stats().admitted, corpus.size());
  EXPECT_EQ(svc.stats().shed, 0u);
}

TEST(ChaosSoak, ResponseBytesIdenticalAcrossWorkerCounts) {
  std::vector<ServiceRequest> corpus = build_corpus(1);  // 54 requests
  const auto run_with = [&](int workers) {
    ServiceConfig cfg;
    cfg.workers = workers;
    SolveService svc(cfg);
    return render(svc.run_batch(corpus));
  };
  const std::string want = run_with(1);
  EXPECT_EQ(run_with(2), want);
  EXPECT_EQ(run_with(4), want);
}

TEST(ChaosSoak, CachedPassIsByteIdenticalToColdPass) {
  std::vector<ServiceRequest> corpus = build_corpus(1);
  ServiceConfig cfg;
  cfg.workers = 2;
  cfg.cache.max_entries = 1024;
  SolveService svc(cfg);
  const std::string cold = render(svc.run_batch(corpus));
  const std::string warm = render(svc.run_batch(corpus));
  EXPECT_EQ(warm, cold);
  EXPECT_GT(svc.cache().hits(), 0u);

  // A cache-disabled service also produces the same bytes.
  ServiceConfig no_cache = cfg;
  no_cache.cache.enabled = false;
  SolveService svc2(no_cache);
  EXPECT_EQ(render(svc2.run_batch(corpus)), cold);
  EXPECT_EQ(svc2.cache().hits() + svc2.cache().misses(), 0u);
}

TEST(ChaosSoak, OverloadShedsExplicitlyNeverAborts) {
  std::vector<ServiceRequest> corpus = build_corpus(1);
  ServiceConfig cfg;
  cfg.workers = 4;
  cfg.queue_capacity = 20;
  cfg.shed_on_overload = true;
  SolveService svc(cfg);
  std::vector<ServiceResponse> rs = svc.run_batch(corpus);
  ASSERT_EQ(rs.size(), corpus.size());
  for (std::size_t i = 0; i < rs.size(); ++i) {
    if (i < 20) {
      EXPECT_EQ(rs[i].admission, Admission::kAdmitted) << i;
    } else {
      EXPECT_EQ(rs[i].admission, Admission::kRejectedOverload) << i;
      EXPECT_FALSE(rs[i].error.empty());
    }
  }
  EXPECT_EQ(svc.stats().admitted, 20u);
  EXPECT_EQ(svc.stats().shed, corpus.size() - 20u);
}

TEST(ChaosSoak, SigtermMidBatchDrainsWithoutLosingRequests) {
  std::vector<ServiceRequest> corpus = build_corpus(2);  // 108 requests
  ServiceConfig cfg;
  cfg.workers = 4;
  SolveService svc(cfg);
  svc.bind_signals();

  std::thread bomber([] {
    std::this_thread::sleep_for(std::chrono::milliseconds(15));
    std::raise(SIGTERM);
  });
  std::vector<ServiceResponse> rs = svc.run_batch(corpus);
  bomber.join();

  // Whether the signal landed mid-batch or after the last solve, every
  // request got exactly one typed response: completed normally or drained
  // as cancelled - never lost, never aborted.
  ASSERT_EQ(rs.size(), corpus.size());
  std::set<std::string> ids;
  for (std::size_t i = 0; i < rs.size(); ++i) {
    EXPECT_EQ(rs[i].id, corpus[i].id);
    EXPECT_TRUE(ids.insert(rs[i].id).second);
    ASSERT_EQ(rs[i].admission, Admission::kAdmitted);
    if (rs[i].stop == congest::StopReason::kCancelled) {
      EXPECT_FALSE(rs[i].certified());
    }
  }
  EXPECT_EQ(SolveService::take_signal(), SIGTERM);

  // Re-entrant: after acknowledging the signal, a fresh batch on the same
  // process (new service) completes clean.
  SolveService after;
  after.bind_signals();
  std::vector<ServiceRequest> probe = build_corpus(1);
  probe.resize(6);
  for (const ServiceResponse& r : after.run_batch(probe)) {
    EXPECT_NE(r.stop, congest::StopReason::kCancelled) << r.id;
  }
  EXPECT_EQ(SolveService::take_signal(), 0);
}

}  // namespace
}  // namespace mwc::service
