// Solve-service core (mwc/service.h): request parsing at the trust
// boundary, admission control and load shedding, the retry/fallback
// degradation ladder, artifact-cache byte-identity, and cancellation
// fan-out (including real SIGTERM delivery and re-entrant recovery).
// The large concurrent soak lives in service_chaos_test.cpp.
#include <gtest/gtest.h>

#include <csignal>
#include <string>
#include <vector>

#include "congest/governor.h"
#include "graph/generators.h"
#include "graph/sequential.h"
#include "mwc/service.h"
#include "support/rng.h"

namespace mwc::service {
namespace {

using graph::Graph;

Graph ring_with_chord() {
  // 8-ring of weight-2 edges plus one weight-1 chord: MWC = 1+2+2 = 5.
  std::vector<graph::Edge> edges;
  for (graph::NodeId v = 0; v < 8; ++v) {
    edges.push_back(graph::Edge{v, static_cast<graph::NodeId>((v + 1) % 8), 2});
  }
  edges.push_back(graph::Edge{0, 2, 1});
  return Graph::undirected(8, edges);
}

Graph random_graph(std::uint64_t seed, int n = 20, int m = 40) {
  support::Rng rng(seed);
  return graph::random_connected(n, m, graph::WeightRange{1, 9}, rng);
}

ServiceRequest make_request(std::string id, Graph g,
                            cycle::SolveMode mode = cycle::SolveMode::kAuto,
                            std::uint64_t seed = 1) {
  ServiceRequest rq;
  rq.id = std::move(id);
  rq.graph = std::move(g);
  rq.mode = mode;
  rq.seed = seed;
  return rq;
}

// ---------- request parsing --------------------------------------------------

TEST(ParseRequest, FullSchemaRoundTrip) {
  const std::string line = R"({"id":"r-1","graph":{"directed":false,"n":4,)"
      R"("edges":[[0,1,2],[1,2],[2,3,4],[3,0,1]]},"mode":"exact",)"
      R"("epsilon":0.25,"seed":99,"threads":2,"max_rounds":5000,)"
      R"("budget":{"max_rounds":100,"max_words":2000},)"
      R"("faults":{"drop_prob":0.1,"dup_prob":0.2,"crashes":[[1,5]],)"
      R"("recovers":[[1,9]],"stalls":[[0,1,2,6]]}})";
  ServiceRequest rq;
  std::string error;
  ASSERT_TRUE(parse_request(line, rq, &error)) << error;
  EXPECT_EQ(rq.id, "r-1");
  EXPECT_EQ(rq.graph.node_count(), 4);
  EXPECT_EQ(rq.graph.edge_count(), 4);
  EXPECT_EQ(rq.graph.edges()[1].w, 1);  // [1,2] defaults to weight 1
  EXPECT_EQ(rq.mode, cycle::SolveMode::kExact);
  EXPECT_DOUBLE_EQ(rq.epsilon, 0.25);
  EXPECT_EQ(rq.seed, 99u);
  EXPECT_EQ(rq.threads, 2);
  EXPECT_EQ(rq.max_rounds, 5000u);
  EXPECT_EQ(rq.budget.max_rounds, 100u);
  EXPECT_EQ(rq.budget.max_words, 2000u);
  EXPECT_DOUBLE_EQ(rq.faults.drop_prob, 0.1);
  EXPECT_DOUBLE_EQ(rq.faults.dup_prob, 0.2);
  ASSERT_EQ(rq.faults.crashes.size(), 1u);
  EXPECT_EQ(rq.faults.crashes[0].node, 1);
  ASSERT_EQ(rq.faults.recovers.size(), 1u);
  ASSERT_EQ(rq.faults.stalls.size(), 1u);
}

TEST(ParseRequest, DefaultsAreMinimal) {
  ServiceRequest rq;
  std::string error;
  ASSERT_TRUE(parse_request(
      R"({"id":"d","graph":{"n":3,"edges":[[0,1],[1,2],[2,0]]}})", rq, &error))
      << error;
  EXPECT_EQ(rq.mode, cycle::SolveMode::kAuto);
  EXPECT_EQ(rq.threads, 1);
  EXPECT_EQ(rq.seed, 1u);
  EXPECT_FALSE(rq.faults.any());
  EXPECT_FALSE(rq.budget.any());
}

TEST(ParseRequest, MalformedLinesRejectedNotCrashed) {
  const char* cases[] = {
      "",                                             // empty
      "not json",                                     // not JSON
      "[1,2,3]",                                      // not an object
      R"({"graph":{"n":3,"edges":[]}})",              // missing id
      R"({"id":"","graph":{"n":3,"edges":[]}})",      // empty id
      R"({"id":"x"})",                                // missing graph
      R"({"id":"x","graph":{"n":0,"edges":[]}})",     // n < 1
      R"({"id":"x","graph":{"n":3,"edges":[[0,3]]}})",    // endpoint range
      R"({"id":"x","graph":{"n":3,"edges":[[1,1]]}})",    // self-loop
      R"({"id":"x","graph":{"n":3,"edges":[[0,1,0]]}})",  // weight < 1
      R"({"id":"x","graph":{"n":3,"edges":[[0,1],[1,0]]}})",  // dup edge
      R"({"id":"x","graph":{"n":3,"edges":[]},"mode":"fast"})",   // bad mode
      R"({"id":"x","graph":{"n":3,"edges":[]},"epsilon":0})",     // bad eps
      R"({"id":"x","graph":{"n":3,"edges":[]},"seed":-1})",       // bad seed
      R"({"id":"x","graph":{"n":3,"edges":[]},"threads":0})",     // bad threads
      R"({"id":"x","graph":{"n":3,"edges":[]},"frobnicate":1})",  // unknown key
      R"({"id":"x","graph":{"n":3,"edges":[]},"faults":{"drop_prob":1.0}})",
      R"({"id":"x","graph":{"n":3,"edges":[]},"faults":{"crashes":[[9,0]]}})",
      R"({"id":"x","graph":{"n":3,"edges":[]},"faults":{"recovers":[[0,5]]}})",
      R"({"id":"x","graph":{"n":3,"edges":[[0,1]]},"faults":{"stalls":[[0,2,1,5]]}})",
      R"({"id":"x","id":"y","graph":{"n":3,"edges":[]}})",  // duplicate key
      R"({"id":"x","graph":{"n":3,"edges":[]}} trailing)",  // trailing bytes
  };
  for (const char* line : cases) {
    ServiceRequest rq;
    std::string error;
    EXPECT_FALSE(parse_request(line, rq, &error)) << line;
    EXPECT_FALSE(error.empty()) << line;
  }
  // Bad UTF-8 in the id: strict string validation applies.
  ServiceRequest rq;
  std::string error;
  EXPECT_FALSE(parse_request(
      std::string(R"({"id":")") + "\xC3\x28" +
          R"(","graph":{"n":3,"edges":[]}})",
      rq, &error));
}

TEST(ParseRequest, NodeCountLimitEnforced) {
  ServiceRequest rq;
  std::string error;
  EXPECT_FALSE(parse_request(R"({"id":"x","graph":{"n":501,"edges":[]}})", rq,
                             &error, /*max_nodes=*/500));
  EXPECT_TRUE(parse_request(R"({"id":"x","graph":{"n":500,"edges":[]}})", rq,
                            &error, /*max_nodes=*/500))
      << error;
}

// ---------- response serialization ------------------------------------------

TEST(Response, RejectedShapeIsMinimal) {
  ServiceResponse r;
  r.id = "bad \"quote\"";
  r.admission = Admission::kRejectedOverload;
  r.error = "admission queue full (capacity 4)";
  EXPECT_EQ(r.to_jsonl(),
            "{\"id\":\"bad \\\"quote\\\"\",\"outcome\":\"rejected_overload\","
            "\"error\":\"admission queue full (capacity 4)\"}");
}

TEST(Response, LedgerOnlyForFaultedRequests) {
  SolveService svc;
  ServiceResponse clean = svc.execute(make_request("c", ring_with_chord()));
  EXPECT_EQ(clean.to_jsonl().find("\"faults\""), std::string::npos);

  ServiceRequest rq = make_request("f", ring_with_chord());
  rq.faults.dup_prob = 0.3;
  ServiceResponse faulted = svc.execute(rq);
  EXPECT_NE(faulted.to_jsonl().find("\"faults\""), std::string::npos);
  EXPECT_NE(faulted.to_jsonl().find("\"dup_messages\""), std::string::npos);
}

// ---------- execution, certification, oracle --------------------------------

TEST(Execute, CertifiedAnswerMatchesSequentialOracle) {
  Graph g = ring_with_chord();
  SolveService svc;
  ServiceResponse r = svc.execute(make_request("r", g, cycle::SolveMode::kExact));
  EXPECT_EQ(r.admission, Admission::kAdmitted);
  EXPECT_TRUE(r.certified());
  EXPECT_EQ(r.value, graph::seq::mwc(g));
  EXPECT_EQ(r.value, 5);
  EXPECT_EQ(r.lower_bound, r.value);
  EXPECT_EQ(r.upper_bound, r.value);
  ASSERT_EQ(r.attempts.size(), 1u);
  EXPECT_EQ(r.attempts[0].status, cycle::SolveStatus::kCertified);
}

TEST(Execute, BudgetKillReturnsBracketWithoutRetry) {
  // A deterministic rounds budget stops the same way on every attempt, so
  // the ladder goes straight to the anytime bracket (one attempt only).
  Graph g = random_graph(5);
  ServiceRequest rq = make_request("b", g, cycle::SolveMode::kExact);
  rq.budget.max_rounds = 6;
  SolveService svc;
  ServiceResponse r = svc.execute(rq);
  EXPECT_EQ(r.stop, congest::StopReason::kRoundBudget);
  EXPECT_FALSE(r.certified());
  EXPECT_EQ(r.attempts.size(), 1u);
  const graph::Weight truth = graph::seq::mwc(g);
  EXPECT_LE(r.lower_bound, truth);
  EXPECT_GE(r.upper_bound, truth);
}

TEST(Execute, LadderRetriesAndFallsBackOnPersistentCrash) {
  // A crash-stopped node interferes on every attempt (the schedule is part
  // of the plan, not the seed), so the ladder runs all rungs: retries with
  // rotated seeds, then the exact->approx fallback, and finally returns
  // the best degraded attempt with the full retry ledger attached.
  Graph g = random_graph(6);
  ServiceRequest rq = make_request("lad", g, cycle::SolveMode::kExact, 11);
  rq.faults.crashes.push_back(congest::CrashFault{3, 4});
  ServiceConfig cfg;
  cfg.ladder.max_retries = 2;
  cfg.ladder.fallback_to_approx = true;
  SolveService svc(cfg);
  ServiceResponse r = svc.execute(rq);
  ASSERT_EQ(r.attempts.size(), 3u);
  EXPECT_EQ(r.attempts[0].seed, 11u);
  EXPECT_NE(r.attempts[1].seed, r.attempts[0].seed);  // rotated
  EXPECT_EQ(r.attempts[0].mode, cycle::SolveMode::kExact);
  EXPECT_EQ(r.attempts[2].mode, cycle::SolveMode::kApprox);  // last rung
  EXPECT_FALSE(r.certified());
  EXPECT_EQ(r.status, cycle::SolveStatus::kDegraded);
  const graph::Weight truth = graph::seq::mwc(g);
  EXPECT_LE(r.lower_bound, truth);
  EXPECT_GE(r.upper_bound, truth);
  EXPECT_EQ(svc.stats().retries, 2u);
  EXPECT_EQ(svc.stats().fallbacks, 1u);
}

TEST(Execute, RetryDodgesTransientFaultSchedule) {
  // Heavy drops under the raw transport degrade the run; the rotated-seed
  // retry draws a fresh schedule. Whatever it lands on, every attempt is
  // recorded and the final answer is the best of them.
  Graph g = ring_with_chord();
  ServiceRequest rq = make_request("t", g, cycle::SolveMode::kExact, 3);
  rq.faults.crashes.push_back(congest::CrashFault{5, 2});
  rq.faults.recovers.push_back(congest::RecoverFault{5, 40});
  ServiceConfig cfg;
  cfg.ladder.max_retries = 1;
  cfg.ladder.fallback_to_approx = false;
  SolveService svc(cfg);
  ServiceResponse r = svc.execute(rq);
  EXPECT_GE(r.attempts.size(), 1u);
  for (const AttemptRecord& a : r.attempts) {
    EXPECT_EQ(a.mode, cycle::SolveMode::kExact);  // fallback disabled
  }
}

// ---------- admission control ------------------------------------------------

TEST(Admission, ShedBeyondCapacityDeterministically) {
  ServiceConfig cfg;
  cfg.queue_capacity = 2;
  cfg.shed_on_overload = true;
  SolveService svc(cfg);
  std::vector<ServiceRequest> batch;
  for (int i = 0; i < 5; ++i) {
    batch.push_back(make_request("q" + std::to_string(i), ring_with_chord()));
  }
  std::vector<ServiceResponse> rs = svc.run_batch(batch);
  ASSERT_EQ(rs.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(rs[static_cast<std::size_t>(i)].id, "q" + std::to_string(i));
    const Admission want =
        i < 2 ? Admission::kAdmitted : Admission::kRejectedOverload;
    EXPECT_EQ(rs[static_cast<std::size_t>(i)].admission, want) << i;
  }
  EXPECT_EQ(svc.stats().admitted, 2u);
  EXPECT_EQ(svc.stats().shed, 3u);
}

TEST(Admission, BackpressureAdmitsEverythingByDefault) {
  ServiceConfig cfg;
  cfg.queue_capacity = 2;  // bound without shedding = backpressure only
  SolveService svc(cfg);
  std::vector<ServiceRequest> batch;
  for (int i = 0; i < 5; ++i) {
    batch.push_back(make_request("q" + std::to_string(i), ring_with_chord()));
  }
  std::vector<ServiceResponse> rs = svc.run_batch(batch);
  for (const ServiceResponse& r : rs) {
    EXPECT_EQ(r.admission, Admission::kAdmitted);
    EXPECT_TRUE(r.certified());
  }
}

// ---------- artifact cache ---------------------------------------------------

TEST(Cache, HitIsByteIdenticalToColdSolve) {
  Graph g = random_graph(7);
  SolveService svc;
  const ServiceRequest rq = make_request("a", g, cycle::SolveMode::kAuto, 5);
  ServiceResponse cold = svc.execute(rq);
  ServiceRequest again = rq;
  again.id = "a";  // same id so the serialized bytes are comparable
  ServiceResponse warm = svc.execute(again);
  EXPECT_FALSE(cold.cache_hit);
  EXPECT_TRUE(warm.cache_hit);
  EXPECT_EQ(warm.to_jsonl(), cold.to_jsonl());
  EXPECT_EQ(svc.cache().hits(), 1u);
  EXPECT_EQ(svc.cache().misses(), 1u);

  // A different requesting id re-labels the cached payload, nothing else.
  ServiceRequest relabeled = rq;
  relabeled.id = "b";
  ServiceResponse other = svc.execute(relabeled);
  EXPECT_TRUE(other.cache_hit);
  EXPECT_EQ(other.id, "b");
  EXPECT_EQ(other.value, cold.value);
}

TEST(Cache, KeyCoversSeedModeAndFaultPlan) {
  Graph g = random_graph(8);
  SolveService svc;
  ServiceRequest rq = make_request("a", g, cycle::SolveMode::kExact, 5);
  svc.execute(rq);
  ServiceRequest other_seed = rq;
  other_seed.seed = 6;
  EXPECT_FALSE(svc.execute(other_seed).cache_hit);
  ServiceRequest other_mode = rq;
  other_mode.mode = cycle::SolveMode::kApprox;
  EXPECT_FALSE(svc.execute(other_mode).cache_hit);
  ServiceRequest other_faults = rq;
  other_faults.faults.dup_prob = 0.1;
  EXPECT_FALSE(svc.execute(other_faults).cache_hit);
  // Thread count is NOT part of the identity (engine invariant).
  ServiceRequest other_threads = rq;
  other_threads.threads = 4;
  EXPECT_TRUE(svc.execute(other_threads).cache_hit);
}

TEST(Cache, WallClockBudgetsAreNeverCached) {
  Graph g = ring_with_chord();
  SolveService svc;
  ServiceRequest rq = make_request("w", g);
  rq.budget.max_wall_seconds = 3600.0;  // generous: solves still complete
  EXPECT_FALSE(svc.execute(rq).cache_hit);
  EXPECT_FALSE(svc.execute(rq).cache_hit);
  EXPECT_EQ(svc.cache().hits(), 0u);
}

TEST(Cache, LruEvictsBeyondCapacity) {
  ServiceConfig cfg;
  cfg.cache.max_entries = 2;
  SolveService svc(cfg);
  Graph a = random_graph(10, 12, 20);
  Graph b = random_graph(11, 12, 20);
  Graph c = random_graph(12, 12, 20);
  svc.execute(make_request("a", a));
  svc.execute(make_request("b", b));
  svc.execute(make_request("c", c));          // evicts a
  EXPECT_FALSE(svc.execute(make_request("a", a)).cache_hit);  // cold again
  EXPECT_TRUE(svc.execute(make_request("c", c)).cache_hit);
}

// ---------- cancellation fan-out --------------------------------------------

TEST(Cancel, ServiceTokenFansOutToEveryRequest) {
  SolveService svc;
  svc.cancel_all("maintenance window");
  std::vector<ServiceRequest> batch;
  for (int i = 0; i < 4; ++i) {
    batch.push_back(make_request("c" + std::to_string(i), random_graph(20)));
  }
  std::vector<ServiceResponse> rs = svc.run_batch(batch);
  ASSERT_EQ(rs.size(), 4u);
  for (const ServiceResponse& r : rs) {
    EXPECT_EQ(r.admission, Admission::kAdmitted);  // typed, not dropped
    EXPECT_EQ(r.stop, congest::StopReason::kCancelled);
    ASSERT_EQ(r.attempts.size(), 1u);  // no retry after cancel
  }
}

TEST(Cancel, SigtermDrainsAndServiceIsReentrant) {
  // The PR-6 fix under test: a process signal fans out through the
  // service's bound token to per-request child tokens, and after
  // take_signal() the next batch runs clean - the handler mailbox is
  // acknowledged, not latched forever.
  SolveService svc;
  svc.bind_signals();
  std::raise(SIGTERM);
  ServiceResponse during = svc.execute(make_request("sig", random_graph(21)));
  EXPECT_EQ(during.stop, congest::StopReason::kCancelled);

  EXPECT_EQ(SolveService::take_signal(), SIGTERM);
  ServiceResponse after = svc.execute(make_request("post", ring_with_chord()));
  EXPECT_EQ(after.stop, congest::StopReason::kNone);
  EXPECT_TRUE(after.certified());
}

TEST(Cancel, CancelledResponsesAreNotCached) {
  SolveService svc;
  Graph g = random_graph(22);
  svc.bind_signals();
  std::raise(SIGINT);
  ServiceResponse cancelled = svc.execute(make_request("x", g));
  EXPECT_EQ(cancelled.stop, congest::StopReason::kCancelled);
  EXPECT_EQ(SolveService::take_signal(), SIGINT);
  ServiceResponse clean = svc.execute(make_request("x", g));
  EXPECT_FALSE(clean.cache_hit);  // the cancelled run left no cache entry
  EXPECT_TRUE(clean.certified());
}

// ---------- worker-count byte-identity ---------------------------------------

TEST(Batch, ResponseBytesIdenticalAcrossWorkerCounts) {
  std::vector<ServiceRequest> batch;
  for (int i = 0; i < 10; ++i) {
    ServiceRequest rq = make_request(
        "w" + std::to_string(i), random_graph(30 + static_cast<std::uint64_t>(i), 16, 30),
        i % 2 == 0 ? cycle::SolveMode::kExact : cycle::SolveMode::kAuto,
        static_cast<std::uint64_t>(i));
    if (i % 3 == 0) rq.faults.drop_prob = 0.15;
    if (i % 4 == 0) rq.faults.dup_prob = 0.2;
    batch.push_back(std::move(rq));
  }
  const auto render = [&](int workers) {
    ServiceConfig cfg;
    cfg.workers = workers;
    SolveService svc(cfg);
    std::string all;
    for (const ServiceResponse& r : svc.run_batch(batch)) {
      all += r.to_jsonl();
      all += '\n';
    }
    return all;
  };
  const std::string want = render(1);
  EXPECT_EQ(render(2), want);
  EXPECT_EQ(render(4), want);
}

}  // namespace
}  // namespace mwc::service
