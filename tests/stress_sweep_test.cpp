// Wide cross-family sweeps: every approximation algorithm against every
// graph family it accepts, including topology-stress shapes (barbell:
// single-link bottleneck; planted-cycle expander: low diameter + heavy
// background; grids and tori; large weight ranges that deepen the scaling
// ladder). These catch cross-module interactions the per-algorithm suites
// don't reach.
#include <gtest/gtest.h>

#include "congest/network.h"
#include "graph/generators.h"
#include "graph/sequential.h"
#include "mwc/api.h"
#include "mwc/exact.h"
#include "mwc/girth_prt.h"
#include "support/rng.h"

namespace mwc::cycle {
namespace {

using congest::Network;
using graph::Graph;
using graph::Weight;
using graph::WeightRange;

struct Family {
  const char* name;
  Graph (*make)(int n, std::uint64_t seed);
};

Graph make_barbell(int n, std::uint64_t seed) {
  support::Rng rng(seed);
  const int clique = n / 3;
  return graph::barbell(clique, n - 2 * clique, WeightRange{1, 6}, rng);
}
Graph make_expander_planted(int n, std::uint64_t seed) {
  support::Rng rng(seed);
  Weight planted = 0;
  return graph::expander_with_planted_cycle(n, 7, &planted, rng);
}
Graph make_torus(int n, std::uint64_t seed) {
  support::Rng rng(seed);
  int side = 3;
  while (side * side < n) ++side;
  return graph::grid(side, side, /*torus=*/true, WeightRange{1, 4}, rng);
}
Graph make_heavy_random(int n, std::uint64_t seed) {
  // Large W: the scaling ladder needs log(hW) ~ 17 levels.
  support::Rng rng(seed);
  return graph::random_connected(n, 2 * n, WeightRange{1, 5000}, rng);
}

const Family kUndirectedFamilies[] = {
    {"barbell", make_barbell},
    {"expander+planted", make_expander_planted},
    {"torus", make_torus},
    {"heavy-random", make_heavy_random},
};

struct SweepCase {
  int family;
  int n;
  std::uint64_t seed;
};

class UndirectedStress : public ::testing::TestWithParam<SweepCase> {};

TEST_P(UndirectedStress, DispatcherSoundAndWithinGuarantee) {
  const SweepCase& c = GetParam();
  const Family& fam = kUndirectedFamilies[c.family];
  Graph g = fam.make(c.n, c.seed);
  Weight exact = graph::seq::mwc(g);
  ASSERT_NE(exact, graph::kInfWeight) << fam.name;
  Network net(g, c.seed + 17);
  ApproxMwcOptions opt;
  MwcResult result = approximate_mwc(net, opt);
  const double guarantee = approximate_mwc_guarantee(net, opt);
  ASSERT_NE(result.value, graph::kInfWeight) << fam.name;
  EXPECT_GE(result.value, exact) << fam.name << " n=" << c.n;
  EXPECT_LE(static_cast<double>(result.value),
            guarantee * static_cast<double>(exact) + 1e-9)
      << fam.name << " n=" << c.n << " seed=" << c.seed;
}

INSTANTIATE_TEST_SUITE_P(
    Families, UndirectedStress,
    ::testing::Values(SweepCase{0, 60, 1}, SweepCase{0, 96, 2},
                      SweepCase{1, 60, 3}, SweepCase{1, 100, 4},
                      SweepCase{2, 49, 5}, SweepCase{2, 81, 6},
                      SweepCase{3, 60, 7}, SweepCase{3, 90, 8},
                      SweepCase{0, 75, 9}, SweepCase{1, 80, 10},
                      SweepCase{2, 64, 11}, SweepCase{3, 75, 12}));

TEST(UndirectedStress, ExactMatchesReferenceOnStressFamilies) {
  for (int f = 0; f < 4; ++f) {
    Graph g = kUndirectedFamilies[f].make(60, 99);
    Network net(g, 5);
    EXPECT_EQ(exact_mwc(net).value, graph::seq::mwc(g))
        << kUndirectedFamilies[f].name;
  }
}

TEST(UndirectedStress, PrtHandlesBarbell) {
  // Barbell: huge cliques full of triangles behind a long bridge. PRT's
  // first doubling phase must already find girth 3.
  Graph g = make_barbell(90, 42);
  Network net(g, 7);
  MwcResult result = girth_prt(net);
  EXPECT_EQ(graph::seq::girth(g), 3);
  EXPECT_GE(result.value, 3);
  EXPECT_LE(result.value, 5);  // (2 - 1/3) * 3 = 5
}

TEST(UndirectedStress, PlantedExpanderFoundByWeightedApprox) {
  for (std::uint64_t seed = 20; seed < 26; ++seed) {
    support::Rng rng(seed);
    Weight planted = 0;
    Graph g = graph::expander_with_planted_cycle(120, 9, &planted, rng);
    ASSERT_EQ(graph::seq::mwc(g), planted);
    Network net(g, seed);
    MwcResult result = approximate_mwc(net);
    EXPECT_GE(result.value, planted) << "seed " << seed;
    EXPECT_LE(static_cast<double>(result.value), 2.5 * planted) << "seed " << seed;
  }
}

TEST(UndirectedStress, HugeWeightRangeKeepsGuarantee) {
  // W = 100000: deep scaling ladder, 40-bit distance fields still hold
  // (h * W ~ 2^23 << 2^36).
  support::Rng rng(31);
  Graph g = graph::random_connected(80, 160, WeightRange{1, 100000}, rng);
  Weight exact = graph::seq::mwc(g);
  Network net(g, 33);
  ApproxMwcOptions opt;
  opt.epsilon = 0.5;
  MwcResult result = approximate_mwc(net, opt);
  EXPECT_GE(result.value, exact);
  EXPECT_LE(static_cast<double>(result.value), 2.5 * static_cast<double>(exact));
}

// Directed stress: bottleneck digraphs at several hub densities under the
// dispatcher (tick-mode Algorithm 2 via Section 5.2 when weighted).
class DirectedStress : public ::testing::TestWithParam<int> {};

TEST_P(DirectedStress, BottleneckDensitySweep) {
  const int hubs = GetParam();
  support::Rng rng(static_cast<std::uint64_t>(hubs) * 13);
  Graph g = graph::bottleneck_digraph(150, hubs, rng);
  Weight exact = graph::seq::mwc(g);
  Network net(g, static_cast<std::uint64_t>(hubs) + 41);
  MwcResult result = approximate_mwc(net);
  EXPECT_GE(result.value, exact) << "hubs " << hubs;
  EXPECT_LE(result.value, 2 * exact) << "hubs " << hubs;
}

INSTANTIATE_TEST_SUITE_P(HubDensity, DirectedStress,
                         ::testing::Values(2, 4, 8, 16, 32));

}  // namespace
}  // namespace mwc::cycle
