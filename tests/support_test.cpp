#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "support/check.h"
#include "support/fit.h"
#include "support/flags.h"
#include "support/json.h"
#include "support/math_util.h"
#include "support/rng.h"
#include "support/table.h"

namespace mwc::support {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 4);
}

TEST(Rng, ForkIndependentOfParentUse) {
  Rng a(7);
  Rng child1 = a.fork(3);
  a.next_u64();
  a.next_u64();
  Rng b(7);
  Rng child2 = b.fork(3);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(child1.next_u64(), child2.next_u64());
}

TEST(Rng, ForksWithDifferentTagsDiffer) {
  Rng a(7);
  Rng c1 = a.fork(1), c2 = a.fork(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (c1.next_u64() == c2.next_u64());
  EXPECT_LT(same, 4);
}

TEST(Rng, NextBelowInRange) {
  Rng a(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(a.next_below(17), 17u);
  }
}

TEST(Rng, NextBelowRoughlyUniform) {
  Rng a(11);
  std::vector<int> counts(10, 0);
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) ++counts[a.next_below(10)];
  for (int c : counts) {
    EXPECT_GT(c, trials / 10 - trials / 50);
    EXPECT_LT(c, trials / 10 + trials / 50);
  }
}

TEST(Rng, NextInInclusiveBounds) {
  Rng a(13);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    auto v = a.next_in(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, BoolProbabilityEdges) {
  Rng a(15);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(a.next_bool(0.0));
    EXPECT_TRUE(a.next_bool(1.0));
  }
}

TEST(Rng, ShufflePermutes) {
  Rng a(17);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7};
  auto orig = v;
  a.shuffle(v);
  auto sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, orig);
}

TEST(Check, ScopedThrowModeRaisesCheckError) {
  ScopedChecksThrow guard;
  try {
    MWC_CHECK_MSG(1 == 2, "the impossible happened");
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos) << what;
    EXPECT_NE(what.find("the impossible happened"), std::string::npos) << what;
  }
  // Passing checks are no-ops in either mode.
  MWC_CHECK(2 + 2 == 4);
}

TEST(Check, ScopedGuardRestoresPreviousMode) {
  ASSERT_FALSE(checks_throw_flag().load());
  {
    ScopedChecksThrow outer;
    EXPECT_TRUE(checks_throw_flag().load());
    {
      ScopedChecksThrow inner;
      EXPECT_TRUE(checks_throw_flag().load());
    }
    EXPECT_TRUE(checks_throw_flag().load());
  }
  EXPECT_FALSE(checks_throw_flag().load());
}

TEST(MathUtil, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 5), 0);
  EXPECT_EQ(ceil_div(1, 5), 1);
  EXPECT_EQ(ceil_div(5, 5), 1);
  EXPECT_EQ(ceil_div(6, 5), 2);
}

TEST(MathUtil, Log2) {
  EXPECT_EQ(floor_log2(1), 0);
  EXPECT_EQ(floor_log2(2), 1);
  EXPECT_EQ(floor_log2(3), 1);
  EXPECT_EQ(floor_log2(1024), 10);
  EXPECT_EQ(ceil_log2(1), 0);
  EXPECT_EQ(ceil_log2(2), 1);
  EXPECT_EQ(ceil_log2(3), 2);
  EXPECT_EQ(ceil_log2(1024), 10);
  EXPECT_EQ(ceil_log2(1025), 11);
}

TEST(MathUtil, IntPow) {
  EXPECT_EQ(int_pow(1024, 0.5), 32);
  EXPECT_EQ(int_pow(1, 0.8), 1);
  EXPECT_EQ(int_pow(32, 1.0), 32);
  // Clamped into [1, n].
  EXPECT_GE(int_pow(5, 0.01), 1);
  EXPECT_LE(int_pow(5, 0.99), 5);
}

TEST(Fit, RecoversExactPowerLaw) {
  std::vector<double> xs, ys;
  for (double x : {64.0, 128.0, 256.0, 512.0, 1024.0}) {
    xs.push_back(x);
    ys.push_back(3.5 * std::pow(x, 0.8));
  }
  PowerFit fit = fit_power_law(xs, ys);
  EXPECT_NEAR(fit.exponent, 0.8, 1e-9);
  EXPECT_NEAR(std::exp(fit.log_const), 3.5, 1e-6);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-9);
}

TEST(Fit, NoisyFitHasReasonableExponent) {
  std::vector<double> xs, ys;
  Rng rng(23);
  for (double x : {64.0, 128.0, 256.0, 512.0, 1024.0, 2048.0}) {
    xs.push_back(x);
    ys.push_back(std::pow(x, 1.2) * (0.9 + 0.2 * rng.next_double()));
  }
  PowerFit fit = fit_power_law(xs, ys);
  EXPECT_NEAR(fit.exponent, 1.2, 0.1);
}

TEST(Flags, ParsesEqualsAndSpaceForms) {
  const char* argv[] = {"prog", "--size=42", "--eps=0.5", "--quick", "input.graph"};
  Flags flags(5, argv, {"size", "eps", "quick"});
  EXPECT_EQ(flags.get_int("size", 0), 42);
  EXPECT_DOUBLE_EQ(flags.get_double("eps", 0.0), 0.5);
  EXPECT_TRUE(flags.has("quick"));
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "input.graph");
  EXPECT_TRUE(flags.unknown_flags().empty());
}

TEST(Flags, DefaultsWhenAbsent) {
  const char* argv[] = {"prog"};
  Flags flags(1, argv);
  EXPECT_FALSE(flags.has("size"));
  EXPECT_EQ(flags.get_int("size", 7), 7);
  EXPECT_EQ(flags.get("name", "fallback"), "fallback");
}

TEST(Flags, DetectsUnknownFlags) {
  const char* argv[] = {"prog", "--frobnicate=1"};
  Flags flags(2, argv, {"size"});
  ASSERT_EQ(flags.unknown_flags().size(), 1u);
  EXPECT_EQ(flags.unknown_flags()[0], "frobnicate");
}

TEST(Flags, BoolFollowedByFlagStaysBool) {
  const char* argv[] = {"prog", "--quick", "--size=3"};
  Flags flags(3, argv, {"quick", "size"});
  EXPECT_EQ(flags.get("quick", ""), "true");
  EXPECT_EQ(flags.get_int("size", 0), 3);
}

TEST(Table, RendersAlignedRows) {
  Table t({"n", "rounds"});
  t.add_row({"64", "123"});
  t.add_row({"12800", "9"});
  std::string s = t.to_string();
  EXPECT_NE(s.find("| n "), std::string::npos);
  EXPECT_NE(s.find("12800"), std::string::npos);
  // All lines same length.
  std::size_t first_nl = s.find('\n');
  std::size_t len = first_nl;
  std::size_t pos = 0;
  while (pos < s.size()) {
    std::size_t nl = s.find('\n', pos);
    EXPECT_EQ(nl - pos, len);
    pos = nl + 1;
  }
}

TEST(Table, FmtHelpers) {
  EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Table::fmt(static_cast<std::int64_t>(-7)), "-7");
}

// ---------- JSON negative paths (the service's trust boundary) -------------
// The solve service feeds attacker-shaped JSONL request lines through this
// parser; every malformed shape must come back as `false` + a one-line
// error, never a crash, hang, or silent mis-parse.

JsonParseOptions strict_json() {
  JsonParseOptions o;
  o.reject_duplicate_keys = true;
  o.validate_utf8 = true;
  return o;
}

TEST(Json, TruncatedDocumentsFailCleanly) {
  const char* cases[] = {
      "",        "{",         "[",          "{\"a\"",   "{\"a\":",
      "{\"a\":1", "[1,2",     "\"unterminated", "tru",  "12.",
      "1e",      "{\"a\":1,", "\"esc\\",    "\"\\u12",
  };
  for (const char* text : cases) {
    JsonValue v;
    std::string error;
    EXPECT_FALSE(parse_json(text, v, &error)) << text;
    EXPECT_FALSE(error.empty()) << text;
  }
}

TEST(Json, DepthBombIsRejectedNotOverflowed) {
  // 40k nested arrays would blow the stack of a naive recursive parser;
  // kMaxJsonDepth cuts the recursion off with an error.
  std::string bomb;
  for (int i = 0; i < 40000; ++i) bomb += '[';
  JsonValue v;
  std::string error;
  EXPECT_FALSE(parse_json(bomb, v, &error));
  EXPECT_NE(error.find("nesting too deep"), std::string::npos);

  // Just inside the limit parses fine.
  std::string ok;
  for (int i = 0; i < kMaxJsonDepth; ++i) ok += '[';
  for (int i = 0; i < kMaxJsonDepth; ++i) ok += ']';
  EXPECT_TRUE(parse_json(ok, v, &error)) << error;
}

TEST(Json, DuplicateKeysRejectedOnlyInStrictMode) {
  const std::string text = R"({"a":1,"a":2})";
  JsonValue v;
  std::string error;
  // Lenient (the repo's own artifacts): both kept, find() returns first.
  ASSERT_TRUE(parse_json(text, v, &error)) << error;
  EXPECT_EQ(v.members.size(), 2u);
  EXPECT_EQ(v.number_or("a", 0.0), 1.0);
  // Strict (the service boundary): smuggling vector, rejected.
  EXPECT_FALSE(parse_json(text, strict_json(), v, &error));
  EXPECT_NE(error.find("duplicate object key"), std::string::npos);
  // Nested objects are checked too.
  EXPECT_FALSE(parse_json(R"({"o":{"x":1,"x":1}})", strict_json(), v, &error));
}

TEST(Json, BadUtf8RejectedInStrictMode) {
  const std::string cases[] = {
      "\"\x80\"",              // bare continuation byte
      "\"\xC3\"",              // truncated 2-byte sequence
      "\"\xC3(\"",             // bad continuation byte
      "\"\xC0\xAF\"",          // overlong '/'
      "\"\xE0\x80\x80\"",      // overlong NUL (3-byte)
      "\"\xED\xA0\x80\"",      // UTF-8 encoded surrogate U+D800
      "\"\xF4\x90\x80\x80\"",  // past U+10FFFF
      "\"\xF8\x88\x80\x80\x80\"",  // 5-byte lead (never valid)
  };
  for (const std::string& text : cases) {
    JsonValue v;
    std::string error;
    EXPECT_FALSE(parse_json(text, strict_json(), v, &error)) << text;
    // Lenient mode passes the same bytes through untouched.
    EXPECT_TRUE(parse_json(text, v, &error)) << error;
  }
  // Well-formed multi-byte text passes strict validation byte-for-byte.
  JsonValue v;
  std::string error;
  ASSERT_TRUE(parse_json("\"caf\xC3\xA9 \xE2\x82\xAC \xF0\x9F\x9A\x80\"",
                         strict_json(), v, &error))
      << error;
  EXPECT_EQ(v.str, "caf\xC3\xA9 \xE2\x82\xAC \xF0\x9F\x9A\x80");
}

TEST(Json, SurrogateEscapesStrictVsLenient) {
  JsonValue v;
  std::string error;
  // Lone surrogates in \u escapes: lenient encodes as-is, strict rejects.
  EXPECT_TRUE(parse_json(R"("\uD800")", v, &error));
  EXPECT_FALSE(parse_json(R"("\uD800")", strict_json(), v, &error));
  EXPECT_FALSE(parse_json(R"("\uDC00")", strict_json(), v, &error));
  EXPECT_FALSE(parse_json(R"("\uD800A")", strict_json(), v, &error));
  // A proper pair decodes to one supplementary code point (U+1F680).
  ASSERT_TRUE(parse_json(R"("\uD83D\uDE80")", strict_json(), v, &error))
      << error;
  EXPECT_EQ(v.str, "\xF0\x9F\x9A\x80");
}

TEST(Json, RawControlCharactersAlwaysRejected) {
  JsonValue v;
  std::string error;
  EXPECT_FALSE(parse_json("\"a\nb\"", v, &error));
  EXPECT_FALSE(parse_json(std::string("\"a\0b\"", 5), v, &error));
  EXPECT_TRUE(parse_json(R"("a\nb")", v, &error));
  EXPECT_EQ(v.str, "a\nb");
}

TEST(Json, TrailingGarbageAndBadLiteralsRejected) {
  JsonValue v;
  std::string error;
  EXPECT_FALSE(parse_json("{} {}", v, &error));
  EXPECT_FALSE(parse_json("truely", v, &error));
  EXPECT_FALSE(parse_json("[1,]", v, &error));
  EXPECT_FALSE(parse_json("{\"a\":1,}", v, &error));
  EXPECT_FALSE(parse_json("nan", v, &error));
  EXPECT_FALSE(parse_json("+1", v, &error));
  EXPECT_FALSE(parse_json("01x", v, &error));
}

TEST(Json, NumbersKeepExactRawText) {
  JsonValue v;
  std::string error;
  ASSERT_TRUE(parse_json("{\"big\":18446744073709551615}", v, &error));
  EXPECT_EQ(v.find("big")->raw, "18446744073709551615");
}

}  // namespace
}  // namespace mwc::support
