// Shared assertions for the algorithm test suites.
#pragma once

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "graph/graph.h"

namespace mwc::testutil {

// Checks that `witness` is a simple cycle of `g` (closed from back() to
// front()) whose total weight equals `expected`.
inline void expect_valid_cycle(const graph::Graph& g,
                               const std::vector<graph::NodeId>& witness,
                               graph::Weight expected) {
  const std::size_t min_len = g.is_directed() ? 2 : 3;
  ASSERT_GE(witness.size(), min_len);
  std::set<graph::NodeId> seen(witness.begin(), witness.end());
  EXPECT_EQ(seen.size(), witness.size()) << "witness revisits a vertex";
  graph::Weight total = 0;
  for (std::size_t i = 0; i < witness.size(); ++i) {
    graph::NodeId from = witness[i];
    graph::NodeId to = witness[(i + 1) % witness.size()];
    ASSERT_TRUE(g.has_arc(from, to))
        << "missing arc " << from << " -> " << to;
    for (const graph::Arc& a : g.out(from)) {
      if (a.to == to) {
        total += a.w;
        break;
      }
    }
  }
  EXPECT_EQ(total, expected) << "witness weight mismatch";
}

// Like expect_valid_cycle, but the weight may be anything in [1, upper]
// (approximation witnesses: a real cycle no heavier than the reported value).
inline void expect_valid_cycle_at_most(const graph::Graph& g,
                                       const std::vector<graph::NodeId>& witness,
                                       graph::Weight upper) {
  const std::size_t min_len = g.is_directed() ? 2 : 3;
  ASSERT_GE(witness.size(), min_len);
  std::set<graph::NodeId> seen(witness.begin(), witness.end());
  EXPECT_EQ(seen.size(), witness.size()) << "witness revisits a vertex";
  graph::Weight total = 0;
  for (std::size_t i = 0; i < witness.size(); ++i) {
    graph::NodeId from = witness[i];
    graph::NodeId to = witness[(i + 1) % witness.size()];
    ASSERT_TRUE(g.has_arc(from, to)) << "missing arc " << from << " -> " << to;
    for (const graph::Arc& a : g.out(from)) {
      if (a.to == to) {
        total += a.w;
        break;
      }
    }
  }
  EXPECT_LE(total, upper) << "witness heavier than reported value";
}

}  // namespace mwc::testutil
