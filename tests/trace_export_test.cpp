// Offline trace tooling (congest/trace_export.h): JSONL codecs, the
// Perfetto exporter, and first-divergence diffing - plus the acceptance
// check that a full algorithm's streamed JSONL is byte-identical across
// thread counts, fault plans included.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "congest/network.h"
#include "congest/trace.h"
#include "congest/trace_export.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "mwc/exact.h"
#include "support/rng.h"

namespace mwc::congest {
namespace {

using graph::Graph;
using graph::WeightRange;

// Streams the whole event vocabulary of one exact-MWC execution to JSONL.
std::string record_jsonl(const Graph& g, std::uint64_t seed, NetworkConfig cfg,
                         int threads) {
  cfg.threads = threads;
  cfg.clamp_threads = false;  // the sweep must really run at `threads`
  TraceOptions options = TraceOptions::full();
  options.wall_clock = false;
  Trace trace(std::size_t{1} << 10, options);  // small ring; sink is lossless
  std::string out;
  JsonlSink sink(out);
  trace.add_sink(&sink);
  Network net(g, seed, cfg);
  net.attach_trace(&trace);
  cycle::exact_mwc(net);
  return out;
}

Graph small_graph(std::uint64_t seed) {
  support::Rng rng(seed);
  return graph::random_connected(24, 52, WeightRange{1, 6}, rng);
}

// ---- byte-identity across thread counts (the acceptance criterion) --------

TEST(TraceExport, JsonlByteIdenticalAcrossThreadCounts) {
  Graph g = small_graph(3);
  const std::string ref = record_jsonl(g, 7, NetworkConfig{}, 1);
  ASSERT_FALSE(ref.empty());
  for (int threads : {2, 4, 8}) {
    EXPECT_EQ(record_jsonl(g, 7, NetworkConfig{}, threads), ref)
        << "threads=" << threads;
  }
}

TEST(TraceExport, JsonlByteIdenticalUnderDropsWithReliableTransport) {
  Graph g = small_graph(4);
  NetworkConfig cfg;
  cfg.faults.drop_prob = 0.12;
  cfg.reliable_transport = true;
  const std::string ref = record_jsonl(g, 9, cfg, 1);
  // The fault plan actually fired: drops and ARQ retransmits are in-stream.
  EXPECT_NE(ref.find("\"kind\":\"drop\""), std::string::npos);
  EXPECT_NE(ref.find("\"kind\":\"retransmit\""), std::string::npos);
  for (int threads : {2, 4, 8}) {
    EXPECT_EQ(record_jsonl(g, 9, cfg, threads), ref) << "threads=" << threads;
  }
}

// ---- JSONL codecs ----------------------------------------------------------

TEST(TraceExport, EventCodecRoundTripsEveryKind) {
  const std::vector<TraceEvent> samples = {
      {0, 0, 1, 2, 3, TraceEventKind::kDeliver, {}},
      {1, 5, 4, 7, 9, TraceEventKind::kDrop, {}},
      {2, 8, 3, 6, 0, TraceEventKind::kStall, {}},
      {3, 2, 5, graph::kNoNode, 0, TraceEventKind::kCrash, {}},
      {4, 0, graph::kNoNode, graph::kNoNode, 0, TraceEventKind::kRunBegin, {}},
      {4, 1, graph::kNoNode, graph::kNoNode, 24, TraceEventKind::kRoundBegin, {}},
      {4, 1, graph::kNoNode, graph::kNoNode, 97, TraceEventKind::kRoundEnd, {}},
      {5, 0, graph::kNoNode, graph::kNoNode, 0, TraceEventKind::kPhaseBegin,
       "apsp/multi_bfs"},
      {5, 0, graph::kNoNode, graph::kNoNode, 0, TraceEventKind::kPhaseEnd,
       "apsp/multi_bfs"},
      {6, 3, 0, 1, 12, TraceEventKind::kRetransmit, {}},
      {6, 3, 1, 0, 1, TraceEventKind::kAck, {}},
      {7, 4, 2, 9, 31, TraceEventKind::kQueuePeak, {}},
  };
  for (const TraceEvent& e : samples) {
    TraceEvent back;
    std::string error;
    ASSERT_TRUE(parse_trace_jsonl(to_jsonl(e), back, &error))
        << to_jsonl(e) << ": " << error;
    EXPECT_EQ(back, e) << to_jsonl(e);
  }
}

TEST(TraceExport, EventParserRejectsMalformedLines) {
  TraceEvent out;
  // Garbage, truncation, wrong key order, unknown kind, trailing junk.
  const char* bad[] = {
      "",
      "not json",
      "{\"run\":0}",
      "{\"round\":0,\"run\":0,\"kind\":\"deliver\",\"from\":0,\"to\":1,"
      "\"words\":1,\"label\":\"\"}",
      "{\"run\":0,\"round\":0,\"kind\":\"teleport\",\"from\":0,\"to\":1,"
      "\"words\":1,\"label\":\"\"}",
      "{\"run\":0,\"round\":0,\"kind\":\"deliver\",\"from\":0,\"to\":1,"
      "\"words\":1,\"label\":\"\"} extra",
  };
  for (const char* line : bad) {
    std::string error;
    EXPECT_FALSE(parse_trace_jsonl(line, out, &error)) << line;
    if (line[0] != '\0') {
      EXPECT_FALSE(error.empty()) << line;
    }
  }
}

TEST(TraceExport, WallSpanCodecRoundTrips) {
  WallSpan span{"transmit", 2, 17, 3, 11, 1203.125, 88.5};
  std::string line = to_jsonl(span);
  WallSpan back;
  std::string error;
  ASSERT_TRUE(parse_wall_jsonl(line, back, &error)) << line << ": " << error;
  EXPECT_EQ(back.name, span.name);
  EXPECT_EQ(back.run, span.run);
  EXPECT_EQ(back.round, span.round);
  EXPECT_EQ(back.worker, span.worker);
  EXPECT_EQ(back.shards, span.shards);
  EXPECT_NEAR(back.start_us, span.start_us, 1e-3);
  EXPECT_NEAR(back.dur_us, span.dur_us, 1e-3);
  EXPECT_FALSE(parse_wall_jsonl("{\"name\":\"x\"}", back, &error));
}

// ---- Perfetto export -------------------------------------------------------

TEST(TraceExport, PerfettoJsonHasExpectedShape) {
  Graph g = small_graph(5);
  NetworkConfig cfg;
  cfg.faults.drop_prob = 0.1;
  cfg.reliable_transport = true;
  std::string jsonl = record_jsonl(g, 13, cfg, 1);
  std::vector<TraceEvent> events;
  std::istringstream in(jsonl);
  std::string line;
  while (std::getline(in, line)) {
    TraceEvent e;
    std::string error;
    ASSERT_TRUE(parse_trace_jsonl(line, e, &error)) << line << ": " << error;
    events.push_back(std::move(e));
  }
  ASSERT_FALSE(events.empty());

  std::vector<WallSpan> wall = {{"invoke", 0, 0, 1, 8, 10.0, 25.0}};
  std::string json = perfetto_trace_json(events, wall);

  EXPECT_EQ(json.rfind("{\"displayTimeUnit\"", 0), 0u);
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  // Complete slices (rounds/runs), counters, instants, and metadata all
  // present; phase spans appear as B/E pairs.
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);
  // The wall-clock process exists and is labeled non-deterministic.
  EXPECT_NE(json.find("NON-DETERMINISTIC"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":1"), std::string::npos);
  // Balanced braces/brackets and a closing newline-free tail: cheap
  // structural sanity without a JSON library (ci.sh does a real json.load).
  long depth = 0;
  bool in_str = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    char c = json[i];
    if (in_str) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_str = false;
      }
      continue;
    }
    if (c == '"') in_str = true;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_str);
}

TEST(TraceExport, PerfettoJsonWithoutWallSpansOmitsWallProcess) {
  std::vector<TraceEvent> events = {
      {0, 0, graph::kNoNode, graph::kNoNode, 0, TraceEventKind::kRunBegin, {}},
      {0, 0, graph::kNoNode, graph::kNoNode, 2, TraceEventKind::kRoundBegin, {}},
      {0, 0, 0, 1, 1, TraceEventKind::kDeliver, {}},
      {0, 0, graph::kNoNode, graph::kNoNode, 1, TraceEventKind::kRoundEnd, {}},
  };
  std::string json = perfetto_trace_json(events);
  EXPECT_EQ(json.find("NON-DETERMINISTIC"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
}

// ---- first-divergence diffing ----------------------------------------------

TEST(TraceExport, DiffIdenticalStreams) {
  std::string t = "line one\nline two\nline three\n";
  std::istringstream a(t), b(t);
  TraceDiff d = diff_traces(a, b);
  EXPECT_TRUE(d.identical());
  EXPECT_FALSE(d.diverged);
  EXPECT_EQ(d.first_diverging_line, 0u);
  EXPECT_EQ(d.common_lines, 3u);
  EXPECT_NE(to_string(d).find("traces identical (3 events)"),
            std::string::npos);
}

TEST(TraceExport, DiffReportsFirstDivergenceWithContext) {
  std::istringstream a("e1\ne2\ne3\ne4-a\ne5-a\n");
  std::istringstream b("e1\ne2\ne3\ne4-b\ne5-b\ne6-b\n");
  TraceDiff d = diff_traces(a, b, /*context_lines=*/2);
  ASSERT_TRUE(d.diverged);
  EXPECT_EQ(d.first_diverging_line, 4u);
  EXPECT_EQ(d.common_lines, 3u);
  EXPECT_EQ(d.a_line, "e4-a");
  EXPECT_EQ(d.b_line, "e4-b");
  ASSERT_EQ(d.context.size(), 2u);  // trimmed to the last two common lines
  EXPECT_EQ(d.context[0], "e2");
  EXPECT_EQ(d.context[1], "e3");
  ASSERT_EQ(d.a_after.size(), 1u);
  EXPECT_EQ(d.a_after[0], "e5-a");
  ASSERT_EQ(d.b_after.size(), 2u);
  EXPECT_EQ(d.b_after[0], "e5-b");
  EXPECT_EQ(d.b_after[1], "e6-b");
}

TEST(TraceExport, DiffDetectsPrefixTruncation) {
  std::istringstream a("e1\ne2\n");
  std::istringstream b("e1\ne2\ne3\n");
  TraceDiff d = diff_traces(a, b);
  ASSERT_TRUE(d.diverged);
  EXPECT_EQ(d.first_diverging_line, 3u);
  EXPECT_EQ(d.a_line, "");  // A ended
  EXPECT_EQ(d.b_line, "e3");
}

// Same seed -> no divergence; different fault seeds -> divergence at the
// correct first event. Mirrors the trace_diff CLI self-check in tools/ci.sh.
// (Note: the fault *schedule* is seed-derived; a fault-free deterministic
// algorithm traces identically across network seeds, so the divergent pair
// must enable drops.)
TEST(TraceExport, DiffOnRealTracesPinpointsSeedDivergence) {
  Graph g = small_graph(6);
  NetworkConfig cfg;
  cfg.faults.drop_prob = 0.15;
  cfg.reliable_transport = true;
  const std::string s5a = record_jsonl(g, 5, cfg, 1);
  const std::string s5b = record_jsonl(g, 5, cfg, 4);
  const std::string s6 = record_jsonl(g, 6, cfg, 1);

  {
    std::istringstream a(s5a), b(s5b);
    TraceDiff d = diff_traces(a, b);
    EXPECT_TRUE(d.identical()) << to_string(d);
  }
  {
    std::istringstream a(s5a), b(s6);
    TraceDiff d = diff_traces(a, b);
    ASSERT_TRUE(d.diverged) << "fault schedules for seeds 5/6 coincided";
    // The reported position really is the first differing JSONL line.
    std::istringstream ra(s5a), rb(s6);
    std::string la, lb;
    std::size_t line_no = 0;
    while (true) {
      bool ga = static_cast<bool>(std::getline(ra, la));
      bool gb = static_cast<bool>(std::getline(rb, lb));
      ++line_no;
      if (!ga || !gb || la != lb) break;
    }
    EXPECT_EQ(d.first_diverging_line, line_no);
    // Both diverging lines decode back into events.
    TraceEvent ea, eb;
    ASSERT_TRUE(parse_trace_jsonl(d.a_line, ea, nullptr));
    ASSERT_TRUE(parse_trace_jsonl(d.b_line, eb, nullptr));
    EXPECT_NE(ea, eb);
  }
}

}  // namespace
}  // namespace mwc::congest
