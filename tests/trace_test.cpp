#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>

#include "congest/metrics.h"
#include "congest/multi_bfs.h"
#include "congest/network.h"
#include "congest/runner.h"
#include "congest/trace.h"
#include "congest/trace_export.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "support/rng.h"

namespace mwc::congest {
namespace {

using graph::Edge;
using graph::Graph;

Graph path_graph(int n) {
  std::vector<Edge> edges;
  for (int i = 0; i + 1 < n; ++i) edges.push_back(Edge{i, i + 1, 1});
  return Graph::undirected(n, edges);
}

// Directed path: the BFS wave only travels forward, one delivery per hop.
Graph directed_path(int n) {
  std::vector<Edge> edges;
  for (int i = 0; i + 1 < n; ++i) edges.push_back(Edge{i, i + 1, 1});
  return Graph::directed(n, edges);
}

TEST(Trace, RecordsBfsWaveInOrder) {
  Graph g = directed_path(5);
  Network net(g, 1);
  Trace trace;
  net.attach_trace(&trace);
  MultiBfsParams params;
  params.sources = {0};
  run_multi_bfs(net, params);

  auto events = trace.events();
  ASSERT_EQ(events.size(), 4u);  // one delivery per hop along the path
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].from, static_cast<graph::NodeId>(i));
    EXPECT_EQ(events[i].to, static_cast<graph::NodeId>(i + 1));
    EXPECT_EQ(events[i].round, i);  // transmitted during engine round i
    EXPECT_EQ(events[i].words, 1u);
  }
  EXPECT_EQ(trace.dropped(), 0u);
}

TEST(Trace, RoundProfileAggregatesWords) {
  support::Rng rng(2);
  Graph g = graph::random_connected(20, 50, graph::WeightRange{1, 1}, rng);
  Network net(g, 3);
  Trace trace;
  net.attach_trace(&trace);
  MultiBfsParams params;
  params.sources = {0};
  RunStats stats;
  run_multi_bfs(net, std::move(params), &stats);

  // The BFS was this network's first run (run id 0).
  auto profile = trace.round_profile(0);
  std::uint64_t total = 0;
  for (auto [round, words] : profile) total += words;
  EXPECT_EQ(total, stats.words);
  // Rounds appear in increasing order.
  for (std::size_t i = 1; i < profile.size(); ++i) {
    EXPECT_GT(profile[i].first, profile[i - 1].first);
  }
}

TEST(Trace, RingBufferKeepsMostRecent) {
  Graph g = path_graph(2);
  Network net(g, 5);
  Trace trace(/*capacity=*/4);
  net.attach_trace(&trace);
  class Burst : public Protocol {
    void begin(NodeCtx& node) override {
      if (node.id() != 0) return;
      for (int i = 0; i < 10; ++i) node.send(1, Message{static_cast<Word>(i)});
    }
    void round(NodeCtx&) override {}
  };
  Burst proto;
  run_protocol(net, proto);
  EXPECT_EQ(trace.total_recorded(), 10u);
  EXPECT_EQ(trace.dropped(), 6u);
  auto events = trace.events();
  ASSERT_EQ(events.size(), 4u);
  // The four most recent deliveries (rounds 6..9).
  EXPECT_EQ(events.front().round, 6u);
  EXPECT_EQ(events.back().round, 9u);
}

TEST(Trace, DetachStopsRecording) {
  Graph g = path_graph(3);
  Network net(g, 7);
  Trace trace;
  net.attach_trace(&trace);
  MultiBfsParams params;
  params.sources = {0};
  run_multi_bfs(net, params);
  const std::size_t before = trace.total_recorded();
  net.attach_trace(nullptr);
  MultiBfsParams params2;
  params2.sources = {2};
  run_multi_bfs(net, std::move(params2));
  EXPECT_EQ(trace.total_recorded(), before);
}

TEST(Trace, ToStringBounded) {
  Graph g = path_graph(4);
  Network net(g, 9);
  Trace trace;
  net.attach_trace(&trace);
  MultiBfsParams params;
  params.sources = {0};
  run_multi_bfs(net, std::move(params));
  std::string dump = trace.to_string(/*max_lines=*/2);
  EXPECT_NE(dump.find("0 -> 1"), std::string::npos);
  EXPECT_NE(dump.find("more)"), std::string::npos);
}

// ---- sink fan-out ----------------------------------------------------------

class CountingSink final : public TraceSink {
 public:
  void on_event(const TraceEvent& event) override {
    ++count_;
    last_ = event;
  }
  std::size_t count() const { return count_; }
  const TraceEvent& last() const { return last_; }

 private:
  std::size_t count_ = 0;
  TraceEvent last_;
};

TEST(TraceSinks, FanOutSeesEveryEvent) {
  Graph g = directed_path(5);
  Network net(g, 1);
  Trace trace(/*capacity=*/2);  // tiny ring; sinks still get everything
  CountingSink counting;
  std::string jsonl;
  JsonlSink streaming(jsonl);
  trace.add_sink(&counting);
  trace.add_sink(&streaming);
  net.attach_trace(&trace);
  MultiBfsParams params;
  params.sources = {0};
  run_multi_bfs(net, params);

  EXPECT_EQ(trace.total_recorded(), 4u);
  EXPECT_EQ(trace.dropped(), 2u);  // the ring lost events...
  EXPECT_EQ(counting.count(), 4u);            // ...the sinks did not
  EXPECT_EQ(streaming.lines_written(), 4u);
  EXPECT_EQ(counting.last().to, 4);
}

TEST(TraceSinks, JsonlRoundTripsThroughParser) {
  TraceEvent e{3, 17, 2, 5, 9, TraceEventKind::kPhaseBegin,
               "weird \"label\"\n\twith\x01 controls"};
  std::string line = to_jsonl(e);
  TraceEvent back;
  std::string error;
  ASSERT_TRUE(parse_trace_jsonl(line, back, &error)) << error;
  EXPECT_EQ(back, e);
  // Control bytes never appear raw in the serialized line.
  for (char c : line) EXPECT_GE(static_cast<unsigned char>(c), 0x20u);
}

// ---- extended vocabulary ---------------------------------------------------

TEST(TraceVocabulary, DefaultOptionsEmitLegacyKindsOnly) {
  support::Rng rng(4);
  Graph g = graph::random_connected(24, 60, graph::WeightRange{1, 3}, rng);
  NetworkConfig cfg;
  cfg.faults.drop_prob = 0.2;
  cfg.reliable_transport = true;
  Network net(g, 11, cfg);
  Trace trace;  // default TraceOptions: every optional kind off
  net.attach_trace(&trace);
  {
    PhaseSpan span(net, "bfs");  // no phase markers without opt-in
    MultiBfsParams params;
    params.sources = {0};
    run_multi_bfs(net, params);
  }
  for (const TraceEvent& e : trace.events()) {
    EXPECT_TRUE(e.kind == TraceEventKind::kDeliver ||
                e.kind == TraceEventKind::kDrop ||
                e.kind == TraceEventKind::kStall ||
                e.kind == TraceEventKind::kCrash)
        << "unexpected kind " << to_string(e.kind);
  }
}

TEST(TraceVocabulary, FullOptionsEmitWholeVocabulary) {
  support::Rng rng(4);
  Graph g = graph::random_connected(24, 60, graph::WeightRange{1, 3}, rng);
  NetworkConfig cfg;
  cfg.faults.drop_prob = 0.2;
  cfg.reliable_transport = true;
  Network net(g, 11, cfg);
  Trace trace(std::size_t{1} << 20, TraceOptions::full());
  net.attach_trace(&trace);
  RunStats stats;
  {
    PhaseSpan span(net, "bfs");
    MultiBfsParams params;
    params.sources = {0};
    run_multi_bfs(net, params, &stats);
  }
  ASSERT_GT(stats.dropped_words, 0u) << "scenario produced no drops";

  std::set<TraceEventKind> kinds;
  for (const TraceEvent& e : trace.events()) kinds.insert(e.kind);
  EXPECT_TRUE(kinds.count(TraceEventKind::kRunBegin));
  EXPECT_TRUE(kinds.count(TraceEventKind::kRoundBegin));
  EXPECT_TRUE(kinds.count(TraceEventKind::kRoundEnd));
  EXPECT_TRUE(kinds.count(TraceEventKind::kDeliver));
  EXPECT_TRUE(kinds.count(TraceEventKind::kDrop));
  EXPECT_TRUE(kinds.count(TraceEventKind::kRetransmit));
  EXPECT_TRUE(kinds.count(TraceEventKind::kAck));
  EXPECT_TRUE(kinds.count(TraceEventKind::kQueuePeak));

  // The PhaseSpan bridge recorded paired, labeled markers - the explicit
  // "bfs" span plus run_multi_bfs's own internal "multi_bfs" span.
  std::map<std::string, int> begins, ends;
  for (const TraceEvent& e : trace.events()) {
    if (e.kind == TraceEventKind::kPhaseBegin) ++begins[e.label];
    if (e.kind == TraceEventKind::kPhaseEnd) ++ends[e.label];
  }
  EXPECT_EQ(begins, ends);  // every opened span closed, label-wise
  EXPECT_EQ(begins["bfs"], 1);
  EXPECT_EQ(begins["multi_bfs"], 1);

  // round_profile stays a pure kDeliver aggregation: words delivered, not
  // inflated by markers or transport events.
  auto profile = trace.round_profile(0);
  std::uint64_t total = 0;
  for (auto [round, words] : profile) total += words;
  EXPECT_EQ(total, stats.words - stats.dropped_words);

  // Every event kind name round-trips through the string mapping.
  for (TraceEventKind k : kinds) {
    TraceEventKind back;
    ASSERT_TRUE(kind_from_string(to_string(k), back));
    EXPECT_EQ(back, k);
  }
}

}  // namespace
}  // namespace mwc::congest
