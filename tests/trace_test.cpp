#include <gtest/gtest.h>

#include "congest/multi_bfs.h"
#include "congest/network.h"
#include "congest/runner.h"
#include "congest/trace.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "support/rng.h"

namespace mwc::congest {
namespace {

using graph::Edge;
using graph::Graph;

Graph path_graph(int n) {
  std::vector<Edge> edges;
  for (int i = 0; i + 1 < n; ++i) edges.push_back(Edge{i, i + 1, 1});
  return Graph::undirected(n, edges);
}

// Directed path: the BFS wave only travels forward, one delivery per hop.
Graph directed_path(int n) {
  std::vector<Edge> edges;
  for (int i = 0; i + 1 < n; ++i) edges.push_back(Edge{i, i + 1, 1});
  return Graph::directed(n, edges);
}

TEST(Trace, RecordsBfsWaveInOrder) {
  Graph g = directed_path(5);
  Network net(g, 1);
  Trace trace;
  net.attach_trace(&trace);
  MultiBfsParams params;
  params.sources = {0};
  run_multi_bfs(net, params);

  auto events = trace.events();
  ASSERT_EQ(events.size(), 4u);  // one delivery per hop along the path
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].from, static_cast<graph::NodeId>(i));
    EXPECT_EQ(events[i].to, static_cast<graph::NodeId>(i + 1));
    EXPECT_EQ(events[i].round, i);  // transmitted during engine round i
    EXPECT_EQ(events[i].words, 1u);
  }
  EXPECT_EQ(trace.dropped(), 0u);
}

TEST(Trace, RoundProfileAggregatesWords) {
  support::Rng rng(2);
  Graph g = graph::random_connected(20, 50, graph::WeightRange{1, 1}, rng);
  Network net(g, 3);
  Trace trace;
  net.attach_trace(&trace);
  MultiBfsParams params;
  params.sources = {0};
  RunStats stats;
  run_multi_bfs(net, std::move(params), &stats);

  // The BFS was this network's first run (run id 0).
  auto profile = trace.round_profile(0);
  std::uint64_t total = 0;
  for (auto [round, words] : profile) total += words;
  EXPECT_EQ(total, stats.words);
  // Rounds appear in increasing order.
  for (std::size_t i = 1; i < profile.size(); ++i) {
    EXPECT_GT(profile[i].first, profile[i - 1].first);
  }
}

TEST(Trace, RingBufferKeepsMostRecent) {
  Graph g = path_graph(2);
  Network net(g, 5);
  Trace trace(/*capacity=*/4);
  net.attach_trace(&trace);
  class Burst : public Protocol {
    void begin(NodeCtx& node) override {
      if (node.id() != 0) return;
      for (int i = 0; i < 10; ++i) node.send(1, Message{static_cast<Word>(i)});
    }
    void round(NodeCtx&) override {}
  };
  Burst proto;
  run_protocol(net, proto);
  EXPECT_EQ(trace.total_recorded(), 10u);
  EXPECT_EQ(trace.dropped(), 6u);
  auto events = trace.events();
  ASSERT_EQ(events.size(), 4u);
  // The four most recent deliveries (rounds 6..9).
  EXPECT_EQ(events.front().round, 6u);
  EXPECT_EQ(events.back().round, 9u);
}

TEST(Trace, DetachStopsRecording) {
  Graph g = path_graph(3);
  Network net(g, 7);
  Trace trace;
  net.attach_trace(&trace);
  MultiBfsParams params;
  params.sources = {0};
  run_multi_bfs(net, params);
  const std::size_t before = trace.total_recorded();
  net.attach_trace(nullptr);
  MultiBfsParams params2;
  params2.sources = {2};
  run_multi_bfs(net, std::move(params2));
  EXPECT_EQ(trace.total_recorded(), before);
}

TEST(Trace, ToStringBounded) {
  Graph g = path_graph(4);
  Network net(g, 9);
  Trace trace;
  net.attach_trace(&trace);
  MultiBfsParams params;
  params.sources = {0};
  run_multi_bfs(net, std::move(params));
  std::string dump = trace.to_string(/*max_lines=*/2);
  EXPECT_NE(dump.find("0 -> 1"), std::string::npos);
  EXPECT_NE(dump.find("more)"), std::string::npos);
}

}  // namespace
}  // namespace mwc::congest
