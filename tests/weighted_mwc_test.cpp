// Theorems 1.4.C and 1.2.D: (2+eps)-approximate weighted MWC via the
// scaling ladder (Section 5).
#include <gtest/gtest.h>

#include "congest/network.h"
#include "graph/generators.h"
#include "graph/sequential.h"
#include "mwc/weighted_mwc.h"
#include "support/rng.h"
#include "test_util.h"

namespace mwc::cycle {
namespace {

using congest::Network;
using graph::Graph;
using graph::Weight;
using graph::WeightRange;

struct Case {
  int n;
  Weight max_w;
  double eps;
  std::uint64_t seed;
};

class UndirectedWeighted : public ::testing::TestWithParam<Case> {};

TEST_P(UndirectedWeighted, SoundAndWithinTwoPlusEps) {
  const Case& c = GetParam();
  support::Rng rng(c.seed);
  Graph g = graph::random_connected(c.n, 2 * c.n, WeightRange{1, c.max_w}, rng);
  Weight exact = graph::seq::mwc(g);
  ASSERT_NE(exact, graph::kInfWeight);
  Network net(g, /*seed=*/c.seed * 13 + 7);
  WeightedMwcParams params;
  params.epsilon = c.eps;
  MwcResult result = undirected_weighted_mwc(net, params);
  ASSERT_NE(result.value, graph::kInfWeight);
  EXPECT_GE(result.value, exact);  // sound
  EXPECT_LE(static_cast<double>(result.value),
            (2.0 + c.eps) * static_cast<double>(exact) + 1e-9)
      << "n=" << c.n << " W=" << c.max_w << " seed=" << c.seed
      << " exact=" << exact;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, UndirectedWeighted,
    ::testing::Values(Case{50, 8, 0.5, 1}, Case{80, 8, 0.5, 2},
                      Case{120, 8, 0.5, 3}, Case{60, 20, 0.5, 4},
                      Case{60, 20, 0.25, 5}, Case{100, 4, 1.0, 6},
                      Case{90, 12, 0.5, 7}, Case{70, 16, 0.25, 8}));

TEST(UndirectedWeighted, PlantedLightCycle) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    support::Rng rng(seed);
    Weight planted = 0;
    Graph g = graph::planted_mwc_undirected(80, 160, 6, &planted, rng);
    Network net(g, seed + 10);
    MwcResult result = undirected_weighted_mwc(net);
    EXPECT_GE(result.value, planted) << "seed " << seed;
    EXPECT_LE(result.value, (5 * planted) / 2) << "seed " << seed;
  }
}

TEST(UndirectedWeighted, HeavyUniformCycleGraph) {
  // A single weighted n-cycle: long-cycle machinery must report it exactly
  // (the exact Bellman-Ford substitution makes long cycles exact).
  support::Rng rng(21);
  Graph g = graph::cycle_with_chords(80, 0, WeightRange{5, 5}, rng);
  Network net(g, 23);
  MwcResult result = undirected_weighted_mwc(net);
  EXPECT_EQ(result.value, 400);
}

class DirectedWeighted : public ::testing::TestWithParam<Case> {};

TEST_P(DirectedWeighted, SoundAndWithinTwoPlusEps) {
  const Case& c = GetParam();
  support::Rng rng(c.seed);
  Graph g = graph::random_strongly_connected(c.n, 3 * c.n, WeightRange{1, c.max_w}, rng);
  Weight exact = graph::seq::mwc(g);
  ASSERT_NE(exact, graph::kInfWeight);
  Network net(g, /*seed=*/c.seed * 17 + 9);
  WeightedMwcParams params;
  params.epsilon = c.eps;
  MwcResult result = directed_weighted_mwc(net, params);
  ASSERT_NE(result.value, graph::kInfWeight);
  EXPECT_GE(result.value, exact);  // sound
  EXPECT_LE(static_cast<double>(result.value),
            (2.0 + c.eps) * static_cast<double>(exact) + 1e-9)
      << "n=" << c.n << " W=" << c.max_w << " seed=" << c.seed
      << " exact=" << exact;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DirectedWeighted,
    ::testing::Values(Case{50, 8, 0.5, 1}, Case{70, 8, 0.5, 2},
                      Case{100, 8, 0.5, 3}, Case{60, 16, 0.5, 4},
                      Case{60, 16, 0.25, 5}, Case{80, 4, 1.0, 6}));

TEST(DirectedWeighted, PlantedLightDirectedCycle) {
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    support::Rng rng(seed);
    Weight planted = 0;
    Graph g = graph::planted_mwc_directed(70, 180, 5, &planted, rng);
    Network net(g, seed + 30);
    MwcResult result = directed_weighted_mwc(net);
    EXPECT_GE(result.value, planted) << "seed " << seed;
    EXPECT_LE(result.value, (5 * planted) / 2) << "seed " << seed;
  }
}

TEST(UndirectedWeighted, WitnessIsARealCycleWhenProduced) {
  int produced = 0;
  for (std::uint64_t seed = 60; seed < 72; ++seed) {
    support::Rng rng(seed);
    Graph g = graph::random_connected(70, 140, WeightRange{1, 9}, rng);
    Network net(g, seed);
    MwcResult result = undirected_weighted_mwc(net);
    if (result.witness.empty()) continue;
    ++produced;
    testutil::expect_valid_cycle_at_most(g, result.witness, result.value);
  }
  EXPECT_GE(produced, 6);
}

TEST(UndirectedWeighted, LongBranchWitnessOnHeavyCycleGraph) {
  // Single weighted ring: the long branch wins and its Bellman-Ford splice
  // must return the whole ring.
  support::Rng rng(73);
  Graph g = graph::cycle_with_chords(60, 0, WeightRange{4, 4}, rng);
  Network net(g, 75);
  MwcResult result = undirected_weighted_mwc(net);
  EXPECT_EQ(result.value, 240);
  ASSERT_FALSE(result.witness.empty());
  EXPECT_EQ(result.witness.size(), 60u);
  testutil::expect_valid_cycle_at_most(g, result.witness, 240);
}

TEST(WeightedMwc, LadderDepthAblationLosesShortCycles) {
  // Capping the scaling ladder to one level must still be sound (every
  // candidate is a real cycle) though possibly far from optimal.
  support::Rng rng(41);
  Graph g = graph::random_connected(60, 130, WeightRange{1, 10}, rng);
  Weight exact = graph::seq::mwc(g);
  Network net(g, 43);
  WeightedMwcParams params;
  params.max_levels = 1;
  MwcResult result = undirected_weighted_mwc(net, params);
  if (result.value != graph::kInfWeight) {
    EXPECT_GE(result.value, exact);
  }
}

}  // namespace
}  // namespace mwc::cycle
