// Statistical checks of the "w.h.p. in n" claims the algorithms rely on.
// Each is measured over many seeded trials; thresholds are loose enough to
// be deterministic for the fixed seeds yet tight enough that a broken
// sampler or a mis-sized constant would trip them.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "congest/network.h"
#include "graph/generators.h"
#include "graph/sequential.h"
#include "ksssp/skeleton_common.h"
#include "support/math_util.h"
#include "support/rng.h"

namespace mwc::ksssp {
namespace {

using congest::Network;
using graph::Graph;
using graph::WeightRange;

TEST(WhpClaims, SampleSizeConcentrates) {
  // |S| with p = c ln(n)/h must concentrate around c n ln(n)/h.
  const int n = 2000, h = 100;
  const double c = 2.0;
  const double expected = c * std::log(n) * n / h;
  support::Rng rng(1);
  Graph g = graph::random_connected(n, 2 * n, WeightRange{1, 1}, rng);
  int min_s = n, max_s = 0;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    Network net(g, seed);
    auto s = detail::sample_vertices(net, c, h);
    min_s = std::min(min_s, static_cast<int>(s.size()));
    max_s = std::max(max_s, static_cast<int>(s.size()));
  }
  EXPECT_GT(min_s, expected * 0.6);
  EXPECT_LT(max_s, expected * 1.4);
}

TEST(WhpClaims, LongPathsHitSamples) {
  // The sampling lemma behind every "long cycle" case: with p = c ln(n)/h,
  // any fixed set of h consecutive vertices contains a sample in almost all
  // trials. Measured on windows of a long path.
  const int n = 1024;
  const int h = 64;
  support::Rng rng(7);
  Graph g = graph::cycle_with_chords(n, 0, WeightRange{1, 1}, rng);
  int window_misses = 0, windows = 0;
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    Network net(g, seed);
    auto samples = detail::sample_vertices(net, 2.0, h);
    std::vector<bool> is_sample(static_cast<std::size_t>(n), false);
    for (auto s : samples) is_sample[static_cast<std::size_t>(s)] = true;
    for (int start = 0; start < n; start += h) {
      ++windows;
      bool hit = false;
      for (int i = 0; i < h; ++i) {
        if (is_sample[static_cast<std::size_t>((start + i) % n)]) hit = true;
      }
      if (!hit) ++window_misses;
    }
  }
  // P(miss) = (1 - 2 ln n / h)^h ~ n^-2; over ~500 windows expect 0 misses,
  // tolerate 1 for slack.
  EXPECT_LE(window_misses, 1) << "of " << windows << " windows";
}

TEST(WhpClaims, SigmaBallsAreHitBySampling) {
  // girth_core case B: a sample lands within every full sigma-ball w.h.p.
  // (p = c ln n / sigma over >= sigma candidates).
  const int n = 900, sigma = 30;
  support::Rng grng(11);
  Graph g = graph::random_connected(n, 3 * n, WeightRange{1, 1}, grng);
  auto hops_from = [&](graph::NodeId v) { return graph::seq::bfs_hops(g, v); };
  int ball_misses = 0, checks = 0;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    support::Rng rng(seed * 13 + 1);
    std::vector<bool> is_sample(static_cast<std::size_t>(n), false);
    const double p = 2.0 * support::log_n(n) / sigma;
    for (int v = 0; v < n; ++v) {
      if (rng.next_bool(p)) is_sample[static_cast<std::size_t>(v)] = true;
    }
    for (graph::NodeId v = 0; v < n; v += 90) {
      // The sigma nearest vertices of v.
      auto d = hops_from(v);
      std::vector<std::pair<graph::Weight, graph::NodeId>> order;
      for (graph::NodeId u = 0; u < n; ++u) order.emplace_back(d[static_cast<std::size_t>(u)], u);
      std::sort(order.begin(), order.end());
      ++checks;
      bool hit = false;
      for (int i = 0; i < sigma; ++i) {
        if (is_sample[static_cast<std::size_t>(order[static_cast<std::size_t>(i)].second)]) {
          hit = true;
          break;
        }
      }
      if (!hit) ++ball_misses;
    }
  }
  EXPECT_LE(ball_misses, 1) << "of " << checks << " balls";
}

}  // namespace
}  // namespace mwc::ksssp
