// bench_compare - the CI perf gate over BENCH_*.json logs.
//
//   bench_compare <baseline.json|dir> <current.json|dir>
//                 [--threshold=0.15] [--time-threshold=0.5] [--warn-only]
//
// Diffs the scalar metrics of two bench JSON logs (bench/bench_util.h's
// JsonLog shape) or of two directories of them (files are matched by name;
// unmatched files are reported but never gate). Each metric is classified
// by its key:
//
//   - "hardware_threads" is machine identity, not performance: ignored.
//   - "*_pct" keys are ratios of timings (e.g. observatory_overhead_pct):
//     a relative diff of a small noisy percentage is noise squared, and
//     ci.sh gates them with absolute asserts instead, so ignored here.
//   - keys containing "seconds" or "cpu" are wall/CPU timings - noisy and
//     machine-dependent, so they gate on the looser --time-threshold
//     (default 0.5: fail only past a 50% slowdown) and only ever in the
//     lower-is-better direction.
//   - keys containing "speedup", "throughput", "mwords" or "reuse" are
//     higher-is-better rates: they gate when the current value falls more
//     than --threshold below the baseline.
//   - everything else (rounds, words, messages, counts) is a deterministic
//     simulator counter, lower-is-better: gates when the current value
//     rises more than --threshold above the baseline.
//
// Missing-in-current and new-in-current metrics are printed as notes;
// adding a metric to a bench must not fail CI, and removal is visible in
// review. --warn-only prints everything but always exits 0 (used under
// sanitizer builds, whose timings are meaningless).
//
// Exit status: 0 no gated regressions, 1 at least one gated regression,
// 2 usage or I/O errors.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "support/flags.h"
#include "support/json.h"

namespace {

using namespace mwc;  // NOLINT

struct Metric {
  std::string key;  // "section/name"
  double value;
};

enum class MetricClass { kIgnored, kTiming, kHigherBetter, kCounter };

bool contains(const std::string& haystack, const char* needle) {
  return haystack.find(needle) != std::string::npos;
}

MetricClass classify(const std::string& key) {
  if (contains(key, "hardware_threads") || contains(key, "_pct")) {
    return MetricClass::kIgnored;
  }
  if (contains(key, "seconds") || contains(key, "cpu")) {
    return MetricClass::kTiming;
  }
  if (contains(key, "speedup") || contains(key, "throughput") ||
      contains(key, "mwords") || contains(key, "reuse")) {
    return MetricClass::kHigherBetter;
  }
  return MetricClass::kCounter;
}

std::string read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) throw std::runtime_error("cannot read " + path);
  std::string text;
  char buf[4096];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, got);
  std::fclose(f);
  return text;
}

// Flattens a JsonLog document into section-qualified scalar metrics.
// Null metric values (NaN/inf at render time) are skipped.
std::vector<Metric> load_metrics(const std::string& path) {
  support::JsonValue doc;
  std::string error;
  if (!support::parse_json(read_file(path), doc, &error)) {
    throw std::runtime_error(path + ": " + error);
  }
  const support::JsonValue* sections = doc.find("sections");
  if (!doc.is_object() || sections == nullptr || !sections->is_array()) {
    throw std::runtime_error(path + ": not a bench JSON log (no sections)");
  }
  std::vector<Metric> out;
  for (const support::JsonValue& sec : sections->items) {
    if (!sec.is_object()) continue;
    const std::string title(sec.string_or("title", "?"));
    const support::JsonValue* metrics = sec.find("metrics");
    if (metrics == nullptr || !metrics->is_object()) continue;
    for (const auto& [key, value] : metrics->members) {
      if (!value.is_number()) continue;
      out.push_back(Metric{title + "/" + key, value.number});
    }
  }
  return out;
}

const Metric* find_metric(const std::vector<Metric>& list,
                          const std::string& key) {
  for (const Metric& m : list) {
    if (m.key == key) return &m;
  }
  return nullptr;
}

struct Gate {
  double threshold;       // counters and higher-better rates
  double time_threshold;  // wall/CPU timings
  bool warn_only;
  int regressions = 0;
  int checked = 0;
};

// Compares one baseline/current log pair; prints per-metric deltas for
// anything that moved and tallies gated regressions into `gate`.
void compare_logs(const std::string& name, const std::vector<Metric>& base,
                  const std::vector<Metric>& cur, Gate& gate) {
  std::printf("== %s ==\n", name.c_str());
  for (const Metric& b : base) {
    const MetricClass cls = classify(b.key);
    if (cls == MetricClass::kIgnored) continue;
    const Metric* c = find_metric(cur, b.key);
    if (c == nullptr) {
      std::printf("  note  %-44s missing in current\n", b.key.c_str());
      continue;
    }
    ++gate.checked;
    const double delta =
        b.value != 0.0 ? (c->value - b.value) / std::fabs(b.value)
                       : (c->value == 0.0 ? 0.0 : HUGE_VAL);
    bool regressed = false;
    switch (cls) {
      case MetricClass::kTiming:
        regressed = delta > gate.time_threshold;
        break;
      case MetricClass::kHigherBetter:
        regressed = delta < -gate.threshold;
        break;
      case MetricClass::kCounter:
        regressed = delta > gate.threshold;
        break;
      case MetricClass::kIgnored:
        break;
    }
    if (regressed) {
      ++gate.regressions;
      std::printf("  %s  %-44s %.6g -> %.6g (%+.1f%%)\n",
                  gate.warn_only ? "WARN" : "FAIL", b.key.c_str(), b.value,
                  c->value, delta * 100.0);
    } else if (delta != 0.0) {
      std::printf("  ok    %-44s %.6g -> %.6g (%+.1f%%)\n", b.key.c_str(),
                  b.value, c->value, delta * 100.0);
    }
  }
  for (const Metric& c : cur) {
    if (classify(c.key) == MetricClass::kIgnored) continue;
    if (find_metric(base, c.key) == nullptr) {
      std::printf("  note  %-44s new metric (%.6g)\n", c.key.c_str(),
                  c.value);
    }
  }
}

int usage() {
  std::fprintf(stderr,
               "usage: bench_compare <baseline.json|dir> <current.json|dir>"
               " [--threshold=0.15] [--time-threshold=0.5] [--warn-only]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  support::Flags flags(argc, argv,
                       {"threshold", "time-threshold", "warn-only"});
  if (!flags.unknown_flags().empty()) {
    std::fprintf(stderr, "unknown flag: --%s\n",
                 flags.unknown_flags()[0].c_str());
    return usage();
  }
  if (flags.positional().size() != 2) return usage();
  const std::string base_path = flags.positional()[0];
  const std::string cur_path = flags.positional()[1];

  Gate gate{flags.get_double("threshold", 0.15),
            flags.get_double("time-threshold", 0.5), flags.has("warn-only")};
  if (gate.threshold < 0.0 || gate.time_threshold < 0.0) {
    std::fprintf(stderr, "thresholds must be >= 0\n");
    return usage();
  }

  try {
    namespace fs = std::filesystem;
    if (fs::is_directory(base_path) != fs::is_directory(cur_path)) {
      std::fprintf(stderr,
                   "both arguments must be files or both directories\n");
      return usage();
    }
    if (fs::is_directory(base_path)) {
      // Matched by file name, in sorted order so the report is stable.
      std::vector<std::string> names;
      for (const fs::directory_entry& e : fs::directory_iterator(base_path)) {
        const std::string name = e.path().filename().string();
        if (e.is_regular_file() && name.size() > 5 &&
            name.substr(name.size() - 5) == ".json") {
          names.push_back(name);
        }
      }
      std::sort(names.begin(), names.end());
      if (names.empty()) {
        std::fprintf(stderr, "no *.json logs in %s\n", base_path.c_str());
        return 2;
      }
      for (const std::string& name : names) {
        const fs::path cur_file = fs::path(cur_path) / name;
        if (!fs::exists(cur_file)) {
          std::printf("== %s ==\n  note  log missing in current\n",
                      name.c_str());
          continue;
        }
        compare_logs(name, load_metrics((fs::path(base_path) / name).string()),
                     load_metrics(cur_file.string()), gate);
      }
    } else {
      compare_logs(fs::path(cur_path).filename().string(),
                   load_metrics(base_path), load_metrics(cur_path), gate);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }

  std::printf("%d metric(s) checked, %d regression(s)%s\n", gate.checked,
              gate.regressions, gate.warn_only ? " (warn-only)" : "");
  return gate.regressions > 0 && !gate.warn_only ? 1 : 0;
}
