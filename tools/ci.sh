#!/usr/bin/env bash
# CI driver: plain build + tests, an ASan/UBSan build + tests, and a TSan
# build exercising the parallel engine.
#
#   tools/ci.sh            all stages
#   tools/ci.sh plain      plain stage only
#   tools/ci.sh sanitize   ASan/UBSan stage only
#   tools/ci.sh tsan       ThreadSanitizer stage only
#
# Stages use separate build trees (build-ci/, build-ci-asan/, build-ci-tsan/)
# so they never poison an incremental developer build/.
set -euo pipefail

cd "$(dirname "$0")/.."
stage="${1:-all}"
jobs="$(nproc 2>/dev/null || echo 4)"

run_stage() {
  local dir="$1"; shift
  cmake -B "$dir" -S . -DCONGEST_MWC_WERROR=ON "$@"
  cmake --build "$dir" -j "$jobs"
  ctest --test-dir "$dir" --output-on-failure -j "$jobs"
}

if [[ "$stage" == "all" || "$stage" == "plain" ]]; then
  echo "=== plain build + tests ==="
  run_stage build-ci
fi

if [[ "$stage" == "all" || "$stage" == "sanitize" ]]; then
  echo "=== ASan/UBSan build + tests ==="
  export ASAN_OPTIONS="detect_leaks=1:strict_string_checks=1"
  export UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1"
  run_stage build-ci-asan -DMWC_SANITIZE=address,undefined \
    -DCMAKE_BUILD_TYPE=Debug
fi

if [[ "$stage" == "all" || "$stage" == "tsan" ]]; then
  echo "=== TSan build + parallel engine tests ==="
  # Only the suites that drive NetworkConfig::threads > 1 - TSan's ~10x
  # slowdown makes the full matrix pointless here, and the single-threaded
  # paths are already covered by the other stages.
  export TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1"
  dir=build-ci-tsan
  cmake -B "$dir" -S . -DCONGEST_MWC_WERROR=ON -DMWC_SANITIZE=thread \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build "$dir" -j "$jobs" --target \
    congest_engine_test parallel_determinism_test schedule_fuzz_test
  "$dir"/tests/congest_engine_test
  "$dir"/tests/parallel_determinism_test
  "$dir"/tests/schedule_fuzz_test
fi

echo "ci: all requested stages passed"
