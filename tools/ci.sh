#!/usr/bin/env bash
# CI driver: plain build + tests, an ASan/UBSan build + tests, and a TSan
# build exercising the parallel engine.
#
#   tools/ci.sh            all stages
#   tools/ci.sh plain      plain stage only
#   tools/ci.sh sanitize   ASan/UBSan stage only
#   tools/ci.sh tsan       ThreadSanitizer stage only
#   tools/ci.sh examples   examples + CLI metrics smoke only
#
# Stages use separate build trees (build-ci/, build-ci-asan/, build-ci-tsan/)
# so they never poison an incremental developer build/.
set -euo pipefail

cd "$(dirname "$0")/.."
stage="${1:-all}"
jobs="$(nproc 2>/dev/null || echo 4)"

run_stage() {
  local dir="$1"; shift
  cmake -B "$dir" -S . -DCONGEST_MWC_WERROR=ON "$@"
  cmake --build "$dir" -j "$jobs"
  ctest --test-dir "$dir" --output-on-failure -j "$jobs"
}

if [[ "$stage" == "all" || "$stage" == "plain" ]]; then
  echo "=== plain build + tests ==="
  run_stage build-ci
fi

if [[ "$stage" == "all" || "$stage" == "sanitize" ]]; then
  echo "=== ASan/UBSan build + tests ==="
  export ASAN_OPTIONS="detect_leaks=1:strict_string_checks=1"
  export UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1"
  run_stage build-ci-asan -DMWC_SANITIZE=address,undefined \
    -DCMAKE_BUILD_TYPE=Debug
fi

if [[ "$stage" == "all" || "$stage" == "tsan" ]]; then
  echo "=== TSan build + parallel engine tests ==="
  # Only the suites that drive NetworkConfig::threads > 1 - TSan's ~10x
  # slowdown makes the full matrix pointless here, and the single-threaded
  # paths are already covered by the other stages.
  export TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1"
  dir=build-ci-tsan
  cmake -B "$dir" -S . -DCONGEST_MWC_WERROR=ON -DMWC_SANITIZE=thread \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build "$dir" -j "$jobs" --target \
    congest_engine_test parallel_determinism_test schedule_fuzz_test
  "$dir"/tests/congest_engine_test
  "$dir"/tests/parallel_determinism_test
  "$dir"/tests/schedule_fuzz_test
fi

if [[ "$stage" == "all" || "$stage" == "examples" ]]; then
  echo "=== examples + CLI metrics smoke ==="
  # Every example program must build and run clean against the public API,
  # and `mwc_cli --metrics` must emit valid, thread-count-invariant JSON.
  dir=build-ci
  cmake -B "$dir" -S . -DCONGEST_MWC_WERROR=ON
  cmake --build "$dir" -j "$jobs" --target \
    quickstart deadlock_detection network_girth_monitor \
    weighted_routing_rings trace_activity mwc_cli
  for ex in quickstart deadlock_detection network_girth_monitor \
            weighted_routing_rings trace_activity; do
    echo "--- example: $ex"
    "$dir/examples/$ex" > /dev/null
  done

  work="$dir/metrics-smoke"
  mkdir -p "$work"
  cli="$dir/tools/mwc_cli"
  "$cli" gen cycle-chords 96 8 3 "$work/smoke.graph"
  "$cli" run auto "$work/smoke.graph" 5 --metrics="$work/m1.json" > /dev/null
  "$cli" run auto "$work/smoke.graph" 5 --threads=8 \
    --metrics="$work/m8.json" > /dev/null
  cmp "$work/m1.json" "$work/m8.json" \
    || { echo "ci: metrics JSON differs between --threads=1 and 8"; exit 1; }
  if command -v python3 > /dev/null; then
    python3 - "$work/m1.json" <<'EOF'
import json, sys
snap = json.load(open(sys.argv[1]))
assert snap["error"] == "", snap["error"]
assert snap["open_phases"] == [], snap["open_phases"]
assert snap["total"]["rounds"] > 0 and snap["phases"], "empty profile"
assert sum(p["rounds"] for p in snap["phases"]) == snap["total"]["rounds"]
print("ci: metrics JSON valid,", len(snap["phases"]), "phases")
EOF
  else
    echo "ci: python3 not found, skipping JSON schema check"
  fi
fi

echo "ci: all requested stages passed"
