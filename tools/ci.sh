#!/usr/bin/env bash
# CI driver: plain build + tests, then an ASan/UBSan build + tests.
#
#   tools/ci.sh            both stages
#   tools/ci.sh plain      plain stage only
#   tools/ci.sh sanitize   sanitizer stage only
#
# Stages use separate build trees (build-ci/, build-ci-asan/) so they never
# poison an incremental developer build/.
set -euo pipefail

cd "$(dirname "$0")/.."
stage="${1:-all}"
jobs="$(nproc 2>/dev/null || echo 4)"

run_stage() {
  local dir="$1"; shift
  cmake -B "$dir" -S . -DCONGEST_MWC_WERROR=ON "$@"
  cmake --build "$dir" -j "$jobs"
  ctest --test-dir "$dir" --output-on-failure -j "$jobs"
}

if [[ "$stage" == "all" || "$stage" == "plain" ]]; then
  echo "=== plain build + tests ==="
  run_stage build-ci
fi

if [[ "$stage" == "all" || "$stage" == "sanitize" ]]; then
  echo "=== ASan/UBSan build + tests ==="
  export ASAN_OPTIONS="detect_leaks=1:strict_string_checks=1"
  export UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1"
  run_stage build-ci-asan -DMWC_SANITIZE=address,undefined \
    -DCMAKE_BUILD_TYPE=Debug
fi

echo "ci: all requested stages passed"
