#!/usr/bin/env bash
# CI driver: plain build + tests, an ASan/UBSan build + tests, a TSan build
# exercising the parallel engine, the examples/metrics smoke, and a trace
# pipeline smoke (JSONL capture, trace_diff, Perfetto export).
#
#   tools/ci.sh            all stages
#   tools/ci.sh plain      plain stage only
#   tools/ci.sh sanitize   ASan/UBSan stage only
#   tools/ci.sh tsan       ThreadSanitizer stage only
#   tools/ci.sh examples   examples + CLI metrics smoke only
#   tools/ci.sh trace      trace capture / diff / Perfetto export smoke only
#   tools/ci.sh faults     corruption + crash-recovery smoke (ASan and TSan)
#   tools/ci.sh governance budgets, deadline, SIGKILL+resume smoke (ASan and
#                          TSan)
#   tools/ci.sh engine     settle-path A/B identity (ASan and TSan) + a
#                          bench_engine --quick throughput smoke
#   tools/ci.sh perf       quick-bench regression gate against the
#                          checked-in bench/baselines/ + observatory
#                          overhead cap + HTML report determinism smoke
#                          (MWC_PERF_WARN_ONLY=1 downgrades bench_compare
#                          failures to warnings, for sanitizer builds or
#                          known-noisy machines)
#   tools/ci.sh service    solve-service chaos soak (ASan and TSan), a
#                          `mwc_cli batch` worker-count byte-identity +
#                          exit-code smoke, and a bench_service --quick
#                          sweep gated against bench/baselines/
#                          (MWC_PERF_WARN_ONLY=1 applies here too)
#
# Stages use separate build trees (build-ci/, build-ci-asan/, build-ci-tsan/)
# so they never poison an incremental developer build/.
set -euo pipefail

cd "$(dirname "$0")/.."
stage="${1:-all}"
jobs="$(nproc 2>/dev/null || echo 4)"

run_stage() {
  local dir="$1"; shift
  cmake -B "$dir" -S . -DCONGEST_MWC_WERROR=ON "$@"
  cmake --build "$dir" -j "$jobs"
  ctest --test-dir "$dir" --output-on-failure -j "$jobs"
}

if [[ "$stage" == "all" || "$stage" == "plain" ]]; then
  echo "=== plain build + tests ==="
  run_stage build-ci
fi

if [[ "$stage" == "all" || "$stage" == "sanitize" ]]; then
  echo "=== ASan/UBSan build + tests ==="
  export ASAN_OPTIONS="detect_leaks=1:strict_string_checks=1"
  export UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1"
  run_stage build-ci-asan -DMWC_SANITIZE=address,undefined \
    -DCMAKE_BUILD_TYPE=Debug
fi

if [[ "$stage" == "all" || "$stage" == "tsan" ]]; then
  echo "=== TSan build + parallel engine tests ==="
  # Only the suites that drive NetworkConfig::threads > 1 - TSan's ~10x
  # slowdown makes the full matrix pointless here, and the single-threaded
  # paths are already covered by the other stages.
  export TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1"
  dir=build-ci-tsan
  cmake -B "$dir" -S . -DCONGEST_MWC_WERROR=ON -DMWC_SANITIZE=thread \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build "$dir" -j "$jobs" --target \
    congest_engine_test parallel_determinism_test schedule_fuzz_test
  "$dir"/tests/congest_engine_test
  "$dir"/tests/parallel_determinism_test
  "$dir"/tests/schedule_fuzz_test
fi

if [[ "$stage" == "all" || "$stage" == "examples" ]]; then
  echo "=== examples + CLI metrics smoke ==="
  # Every example program must build and run clean against the public API,
  # and `mwc_cli --metrics` must emit valid, thread-count-invariant JSON.
  dir=build-ci
  cmake -B "$dir" -S . -DCONGEST_MWC_WERROR=ON
  cmake --build "$dir" -j "$jobs" --target \
    quickstart deadlock_detection network_girth_monitor \
    weighted_routing_rings trace_activity mwc_cli
  for ex in quickstart deadlock_detection network_girth_monitor \
            weighted_routing_rings trace_activity; do
    echo "--- example: $ex"
    "$dir/examples/$ex" > /dev/null
  done

  work="$dir/metrics-smoke"
  mkdir -p "$work"
  cli="$dir/tools/mwc_cli"
  "$cli" gen cycle-chords 96 8 3 "$work/smoke.graph"
  "$cli" run auto "$work/smoke.graph" 5 --metrics="$work/m1.json" > /dev/null
  "$cli" run auto "$work/smoke.graph" 5 --threads=8 \
    --metrics="$work/m8.json" > /dev/null
  cmp "$work/m1.json" "$work/m8.json" \
    || { echo "ci: metrics JSON differs between --threads=1 and 8"; exit 1; }
  if command -v python3 > /dev/null; then
    python3 - "$work/m1.json" <<'EOF'
import json, sys
snap = json.load(open(sys.argv[1]))
assert snap["error"] == "", snap["error"]
assert snap["open_phases"] == [], snap["open_phases"]
assert snap["total"]["rounds"] > 0 and snap["phases"], "empty profile"
assert sum(p["rounds"] for p in snap["phases"]) == snap["total"]["rounds"]
print("ci: metrics JSON valid,", len(snap["phases"]), "phases")
EOF
  else
    echo "ci: python3 not found, skipping JSON schema check"
  fi
fi

if [[ "$stage" == "all" || "$stage" == "trace" ]]; then
  echo "=== trace capture / diff / Perfetto export smoke ==="
  # End-to-end over the observability pipeline: record a JSONL trace, assert
  # byte-identity across thread counts, check trace_diff's both verdicts,
  # and validate the exported Chrome/Perfetto JSON. The divergent pair must
  # use a fault plan - the fault schedule is seed-derived, whereas `run auto`
  # itself is deterministic and traces identically across network seeds.
  dir=build-ci
  cmake -B "$dir" -S . -DCONGEST_MWC_WERROR=ON
  cmake --build "$dir" -j "$jobs" --target mwc_cli trace_diff
  work="$dir/trace-smoke"
  mkdir -p "$work"
  cli="$dir/tools/mwc_cli"
  tdiff="$dir/tools/trace_diff"
  "$cli" gen cycle-chords 96 8 3 "$work/smoke.graph"

  "$cli" run auto "$work/smoke.graph" 5 --trace="$work/t1.jsonl" > /dev/null
  "$cli" run auto "$work/smoke.graph" 5 --threads=8 \
    --trace="$work/t8.jsonl" > /dev/null
  cmp "$work/t1.jsonl" "$work/t8.jsonl" \
    || { echo "ci: JSONL trace differs between --threads=1 and 8"; exit 1; }
  "$tdiff" "$work/t1.jsonl" "$work/t8.jsonl" \
    || { echo "ci: trace_diff flagged identical traces"; exit 1; }
  [[ -s "$work/t8.jsonl.wall" ]] \
    || { echo "ci: threaded run wrote no wall-clock sidecar"; exit 1; }

  "$cli" run auto "$work/smoke.graph" 5 --fault-drop-prob=0.05 \
    --trace="$work/d5.jsonl" > /dev/null
  "$cli" run auto "$work/smoke.graph" 6 --fault-drop-prob=0.05 \
    --trace="$work/d6.jsonl" > /dev/null
  if "$tdiff" "$work/d5.jsonl" "$work/d6.jsonl" > "$work/diff.txt"; then
    echo "ci: trace_diff missed a seed divergence"; exit 1
  fi
  grep -q "first divergence" "$work/diff.txt" \
    || { echo "ci: trace_diff report lacks the divergence line"; exit 1; }

  "$cli" trace export "$work/t8.jsonl" "$work/t8.perfetto.json" \
    --wall="$work/t8.jsonl.wall" > /dev/null
  if command -v python3 > /dev/null; then
    python3 - "$work/t8.perfetto.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
events = doc["traceEvents"]
assert events, "no trace events exported"
phs = {e["ph"] for e in events}
assert {"M", "X", "i", "C"} <= phs, f"missing event types: {phs}"
assert any(e.get("pid") == 1 for e in events), "wall-clock process missing"
print("ci: perfetto JSON valid,", len(events), "events")
EOF
  else
    echo "ci: python3 not found, skipping Perfetto JSON check"
  fi
fi

if [[ "$stage" == "all" || "$stage" == "faults" ]]; then
  echo "=== corruption + crash-recovery smoke (ASan + TSan) ==="
  # Drives mwc_cli's fault flags under both sanitizers, plus the fault
  # injection suite under TSan (the ASan tree already ran it via ctest).
  # Corruption must be fully masked by the checksumming transport: exit 0,
  # `status: certified`, and metrics JSON byte-identical across thread
  # counts. A crash+recovery run must exit with the documented degraded
  # code 3 and print its fault ledger.
  export ASAN_OPTIONS="detect_leaks=1:strict_string_checks=1"
  export UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1"
  export TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1"
  cmake -B build-ci-asan -S . -DCONGEST_MWC_WERROR=ON \
    -DMWC_SANITIZE=address,undefined -DCMAKE_BUILD_TYPE=Debug
  cmake --build build-ci-asan -j "$jobs" --target mwc_cli
  cmake -B build-ci-tsan -S . -DCONGEST_MWC_WERROR=ON -DMWC_SANITIZE=thread \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build build-ci-tsan -j "$jobs" --target mwc_cli fault_injection_test
  build-ci-tsan/tests/fault_injection_test

  for dir in build-ci-asan build-ci-tsan; do
    echo "--- fault-flag smoke: $dir"
    cli="$dir/tools/mwc_cli"
    work="$dir/faults-smoke"
    mkdir -p "$work"
    "$cli" gen cycle-chords 64 6 5 "$work/f.graph"

    "$cli" run exact "$work/f.graph" 3 --fault-corrupt-prob=0.05 \
      --metrics="$work/c1.json" > "$work/corrupt.txt"
    grep -q "status: certified" "$work/corrupt.txt" \
      || { echo "ci: corruption not masked ($dir)"; exit 1; }
    grep -q "checksum rejects" "$work/corrupt.txt" \
      || { echo "ci: corruption run printed no fault ledger ($dir)"; exit 1; }
    "$cli" run exact "$work/f.graph" 3 --fault-corrupt-prob=0.05 --threads=4 \
      --metrics="$work/c4.json" > /dev/null
    cmp "$work/c1.json" "$work/c4.json" \
      || { echo "ci: corruption metrics differ across --threads ($dir)"; exit 1; }

    rc=0
    "$cli" run exact "$work/f.graph" 3 --fault-crash=5:40 \
      --fault-recover=5:400 --max-rounds=200000 > "$work/crash.txt" || rc=$?
    [[ "$rc" -eq 3 ]] \
      || { echo "ci: crash+recover exit code $rc, want 3 ($dir)"; exit 1; }
    grep -q "status: degraded" "$work/crash.txt" \
      || { echo "ci: crash+recover run not labeled degraded ($dir)"; exit 1; }
    grep -q "recoveries" "$work/crash.txt" \
      || { echo "ci: crash+recover run printed no fault ledger ($dir)"; exit 1; }
  done
fi

if [[ "$stage" == "all" || "$stage" == "governance" ]]; then
  echo "=== resource governance: budgets, deadline, kill/resume (ASan + TSan) ==="
  # The governance contract end to end, under both sanitizers: a solve that
  # exhausts a budget exits with the documented code 4 and prints an
  # anytime report (stop reason + explicit bounds); a checkpointing solve
  # SIGKILLed mid-run resumes to a report, metrics JSON, and trace log
  # byte-identical to an uninterrupted run - even when the resume uses a
  # different thread count.
  export ASAN_OPTIONS="detect_leaks=1:strict_string_checks=1"
  export UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1"
  export TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1"
  cmake -B build-ci-asan -S . -DCONGEST_MWC_WERROR=ON \
    -DMWC_SANITIZE=address,undefined -DCMAKE_BUILD_TYPE=Debug
  cmake --build build-ci-asan -j "$jobs" --target mwc_cli
  cmake -B build-ci-tsan -S . -DCONGEST_MWC_WERROR=ON -DMWC_SANITIZE=thread \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build build-ci-tsan -j "$jobs" --target mwc_cli governance_test
  build-ci-tsan/tests/governance_test

  for dir in build-ci-asan build-ci-tsan; do
    echo "--- governance smoke: $dir"
    cli="$dir/tools/mwc_cli"
    work="$dir/governance-smoke"
    rm -rf "$work"
    mkdir -p "$work"
    "$cli" gen random 96 240 7 "$work/g.graph"

    # Deterministic round budget: documented exit code 4, stop diagnostic,
    # and an explicit anytime bounds line.
    rc=0
    "$cli" run exact "$work/g.graph" 3 --budget-rounds=100 \
      > "$work/budget.txt" || rc=$?
    [[ "$rc" -eq 4 ]] \
      || { echo "ci: budget run exit code $rc, want 4 ($dir)"; exit 1; }
    grep -q "stop: round_budget" "$work/budget.txt" \
      || { echo "ci: budget run lacks the stop line ($dir)"; exit 1; }
    grep -q "budget_exhausted" "$work/budget.txt" \
      || { echo "ci: budget run lacks the outcome ($dir)"; exit 1; }
    grep -q "bounds: .* <= mwc <= " "$work/budget.txt" \
      || { echo "ci: budget run lacks anytime bounds ($dir)"; exit 1; }

    # The non-deterministic twin: a wall-clock deadline too tight for the
    # instance must stop the solve the same way (exit 4, stop: deadline).
    "$cli" gen random 300 900 9 "$work/big.graph"
    rc=0
    "$cli" run exact "$work/big.graph" 3 --deadline=0.05 \
      > "$work/deadline.txt" || rc=$?
    [[ "$rc" -eq 4 ]] \
      || { echo "ci: deadline run exit code $rc, want 4 ($dir)"; exit 1; }
    grep -q "stop: deadline" "$work/deadline.txt" \
      || { echo "ci: deadline run lacks the stop line ($dir)"; exit 1; }

    # SIGKILL a checkpointing solve mid-run (the governor's die_at_round
    # hook makes the kill land deterministically), resume, and demand
    # byte-identical metrics, trace, and report - resuming on 4 threads
    # from a checkpoint cut on 1.
    "$cli" run exact "$work/g.graph" 3 --metrics="$work/ref.json" \
      --trace="$work/ref.jsonl" > "$work/ref.txt"
    rc=0
    "$cli" run exact "$work/g.graph" 3 --metrics="$work/m.json" \
      --trace="$work/t.jsonl" --checkpoint="$work/c.ckpt" \
      --die-at-round=60 > /dev/null 2>&1 || rc=$?
    [[ "$rc" -eq 137 || "$rc" -eq 9 ]] \
      || { echo "ci: die-at-round exit code $rc, want SIGKILL ($dir)"; exit 1; }
    "$cli" run exact "$work/g.graph" 3 --threads=4 --metrics="$work/m.json" \
      --trace="$work/t.jsonl" --checkpoint="$work/c.ckpt" --resume \
      > "$work/resumed.txt"
    cmp "$work/ref.json" "$work/m.json" \
      || { echo "ci: resumed metrics differ from uninterrupted ($dir)"; exit 1; }
    cmp "$work/ref.jsonl" "$work/t.jsonl" \
      || { echo "ci: resumed trace differs from uninterrupted ($dir)"; exit 1; }
    # The report itself matches too (only the output file names differ).
    grep -v "wrote" "$work/ref.txt" > "$work/ref_report.txt"
    grep -v "wrote" "$work/resumed.txt" > "$work/resumed_report.txt"
    cmp "$work/ref_report.txt" "$work/resumed_report.txt" \
      || { echo "ci: resumed report differs from uninterrupted ($dir)"; exit 1; }

    # A checkpoint never resumes against the wrong identity.
    rc=0
    "$cli" run exact "$work/g.graph" 4 --checkpoint="$work/c.ckpt" --resume \
      > /dev/null 2> "$work/refused.txt" || rc=$?
    [[ "$rc" -eq 2 ]] \
      || { echo "ci: wrong-seed resume exit code $rc, want 2 ($dir)"; exit 1; }
    grep -q "different seed" "$work/refused.txt" \
      || { echo "ci: wrong-seed resume lacks the diagnostic ($dir)"; exit 1; }
  done
fi

if [[ "$stage" == "all" || "$stage" == "engine" ]]; then
  echo "=== frontier engine: settle-path A/B identity + perf smoke ==="
  # The frontier settle path's contract under both sanitizers: reports,
  # metrics JSON, and trace bytes identical to the legacy queues at threads
  # 1/2/4 (frontier_engine_test), with ASan watching the spill pool's slot
  # recycling and TSan the packed-queue handoff to the workers. Then a
  # plain-build bench_engine --quick must show the frontier path actually
  # faster than legacy single-threaded - throughput regressions fail here,
  # not in a quarterly bench review.
  export ASAN_OPTIONS="detect_leaks=1:strict_string_checks=1"
  export UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1"
  export TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1"
  cmake -B build-ci-asan -S . -DCONGEST_MWC_WERROR=ON \
    -DMWC_SANITIZE=address,undefined -DCMAKE_BUILD_TYPE=Debug
  cmake --build build-ci-asan -j "$jobs" --target frontier_engine_test
  build-ci-asan/tests/frontier_engine_test
  cmake -B build-ci-tsan -S . -DCONGEST_MWC_WERROR=ON -DMWC_SANITIZE=thread \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build build-ci-tsan -j "$jobs" --target frontier_engine_test
  build-ci-tsan/tests/frontier_engine_test

  dir=build-ci
  cmake -B "$dir" -S . -DCONGEST_MWC_WERROR=ON
  cmake --build "$dir" -j "$jobs" --target bench_engine
  work="$dir/engine-smoke"
  mkdir -p "$work"
  (cd "$work" && ../bench/bench_engine --quick > bench.txt)
  if grep -q "| NO" "$work/bench.txt"; then
    echo "ci: A5a row not identical to the legacy baseline"; exit 1
  fi
  if command -v python3 > /dev/null; then
    python3 - "$work/BENCH_ENGINE.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
metrics = {}
for sec in doc["sections"]:
    metrics.update(sec["metrics"])
assert metrics.get("hardware_threads", 0) >= 1, "preamble lacks hardware_threads"
speedup = metrics["frontier_speedup_n256_t1"]
# Conservative floor (measured ~2.3x): catches "frontier silently fell back
# to legacy" and order-of-magnitude regressions, not benchmark noise.
assert speedup >= 1.3, f"frontier t=1 speedup {speedup:.2f} < 1.3x over legacy"
print(f"ci: frontier speedup n=256 t=1: {speedup:.2f}x over legacy")
EOF
  else
    echo "ci: python3 not found, skipping throughput check"
  fi
fi

if [[ "$stage" == "all" || "$stage" == "perf" ]]; then
  echo "=== perf gate: quick benches vs bench/baselines + report smoke ==="
  # Three checks, all on the plain build:
  #  1. bench_compare diffs the quick benches' fresh JSON logs against the
  #     checked-in bench/baselines/. Deterministic simulator counters gate
  #     at 15% - they should not move at all without a code change - while
  #     wall/CPU timings only gate at a 3x slowdown (--time-threshold=2.0):
  #     containers differ, and the tight throughput assertions live in the
  #     engine stage's speedup check. After an intentional perf change,
  #     regenerate the baselines (see bench/baselines/README.md) and commit
  #     them with the change.
  #  2. The congestion observatory must stay cheap: bench_engine's A5d rows
  #     gate observatory_overhead_pct (ledger cost on top of plain metrics)
  #     below 5%.
  #  3. `mwc_cli report` must render the same metrics+trace pair to
  #     byte-identical, fully self-contained HTML regardless of the
  #     --threads value that produced the inputs.
  dir=build-ci
  cmake -B "$dir" -S . -DCONGEST_MWC_WERROR=ON
  cmake --build "$dir" -j "$jobs" --target \
    bench_engine bench_faults bench_compare mwc_cli
  work="$dir/perf-smoke"
  rm -rf "$work"
  mkdir -p "$work"
  (cd "$work" && ../bench/bench_engine --quick > bench_engine.txt)
  (cd "$work" && ../bench/bench_faults --quick > bench_faults.txt)
  warn_flag=""
  [[ "${MWC_PERF_WARN_ONLY:-0}" == "1" ]] && warn_flag="--warn-only"
  "$dir/tools/bench_compare" bench/baselines "$work" \
    --threshold=0.15 --time-threshold=2.0 $warn_flag \
    || { echo "ci: quick benches regressed against bench/baselines"; exit 1; }
  if command -v python3 > /dev/null; then
    python3 - "$work/BENCH_ENGINE.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
metrics = {}
for sec in doc["sections"]:
    metrics.update(sec["metrics"])
pct = metrics["observatory_overhead_pct"]
assert pct < 5.0, f"congestion observatory costs {pct:.1f}% over plain metrics (cap 5%)"
print(f"ci: observatory overhead {pct:+.1f}% over plain metrics (cap 5%)")
EOF
  else
    echo "ci: python3 not found, skipping observatory overhead check"
  fi

  cli="$dir/tools/mwc_cli"
  "$cli" gen cycle-chords 96 8 3 "$work/smoke.graph"
  "$cli" run auto "$work/smoke.graph" 5 --metrics="$work/m1.json" \
    --congestion --trace="$work/t1.jsonl" > /dev/null
  "$cli" run auto "$work/smoke.graph" 5 --threads=8 \
    --metrics="$work/m8.json" --congestion --trace="$work/t8.jsonl" > /dev/null
  "$cli" report "$work/m1.json" "$work/r1.html" --trace="$work/t1.jsonl" \
    > /dev/null
  "$cli" report "$work/m8.json" "$work/r8.html" --trace="$work/t8.jsonl" \
    > /dev/null
  cmp "$work/r1.html" "$work/r8.html" \
    || { echo "ci: HTML report differs between --threads=1 and 8 inputs"; exit 1; }
  if command -v python3 > /dev/null; then
    python3 - "$work/r1.html" <<'EOF'
import sys
html = open(sys.argv[1], encoding="utf-8").read()
assert html.startswith("<!DOCTYPE html"), "report is not an HTML document"
assert html.rstrip().endswith("</html>"), "report HTML is truncated"
assert "http://" not in html and "https://" not in html, "external reference"
assert "<script" not in html, "report must not carry JavaScript"
for section in ("congestion", "adherence", "waterfall"):
    assert section in html.lower(), f"report lacks the {section} section"
print("ci: HTML report valid,", len(html), "chars, self-contained")
EOF
  else
    echo "ci: python3 not found, skipping HTML report check"
  fi
fi

if [[ "$stage" == "all" || "$stage" == "service" ]]; then
  echo "=== solve service: chaos soak (ASan + TSan) + batch smoke + perf gate ==="
  # The service contract under both sanitizers: the chaos soak (200+
  # concurrent requests across fault plans - nothing lost, duplicated, or
  # mis-certified; SIGTERM drains, never drops) plus the service unit
  # suite. Then, on the plain build, `mwc_cli batch` must emit one JSONL
  # response per input line (malformed lines included), byte-identical
  # output across --workers=1/2/4, and the documented exit-code max rule;
  # finally bench_service --quick gates the service counters (shed rate,
  # retries, cache hits) and throughput against the checked-in baseline.
  export ASAN_OPTIONS="detect_leaks=1:strict_string_checks=1"
  export UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1"
  export TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1"
  cmake -B build-ci-asan -S . -DCONGEST_MWC_WERROR=ON \
    -DMWC_SANITIZE=address,undefined -DCMAKE_BUILD_TYPE=Debug
  cmake --build build-ci-asan -j "$jobs" --target service_test service_chaos_test
  build-ci-asan/tests/service_test
  build-ci-asan/tests/service_chaos_test
  cmake -B build-ci-tsan -S . -DCONGEST_MWC_WERROR=ON -DMWC_SANITIZE=thread \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build build-ci-tsan -j "$jobs" --target service_test service_chaos_test
  build-ci-tsan/tests/service_test
  build-ci-tsan/tests/service_chaos_test

  dir=build-ci
  cmake -B "$dir" -S . -DCONGEST_MWC_WERROR=ON
  cmake --build "$dir" -j "$jobs" --target mwc_cli bench_service bench_compare
  cli="$dir/tools/mwc_cli"
  work="$dir/service-smoke"
  rm -rf "$work"
  mkdir -p "$work"
  cat > "$work/requests.jsonl" <<'EOF'
{"id":"clean","graph":{"n":6,"edges":[[0,1,2],[1,2,2],[2,3,2],[3,4,2],[4,5,2],[5,0,2],[0,3,1]]},"mode":"exact","seed":7}
{"id":"lossy","graph":{"n":6,"edges":[[0,1,2],[1,2,2],[2,3,2],[3,4,2],[4,5,2],[5,0,2],[0,3,1]]},"seed":9,"faults":{"drop_prob":0.2,"dup_prob":0.2}}
this line is not a request
{"id":"killed","graph":{"n":6,"edges":[[0,1,2],[1,2,2],[2,3,2],[3,4,2],[4,5,2],[5,0,2],[0,3,1]]},"mode":"exact","seed":11,"budget":{"max_rounds":3}}
EOF
  for w in 1 2 4; do
    rc=0
    "$cli" batch "$work/requests.jsonl" --workers="$w" \
      --out="$work/r$w.jsonl" 2> /dev/null || rc=$?
    # Exit = max per-response code: budget stop (4) outranks the malformed
    # line (2) and the certified rows (0).
    [[ "$rc" -eq 4 ]] \
      || { echo "ci: batch --workers=$w exit code $rc, want 4"; exit 1; }
    [[ "$(wc -l < "$work/r$w.jsonl")" -eq 4 ]] \
      || { echo "ci: batch --workers=$w dropped a response line"; exit 1; }
  done
  cmp "$work/r1.jsonl" "$work/r2.jsonl" \
    || { echo "ci: batch responses differ between --workers=1 and 2"; exit 1; }
  cmp "$work/r1.jsonl" "$work/r4.jsonl" \
    || { echo "ci: batch responses differ between --workers=1 and 4"; exit 1; }
  grep -q '"outcome":"rejected_invalid"' "$work/r1.jsonl" \
    || { echo "ci: malformed line lacks its rejected_invalid response"; exit 1; }
  grep -q '"id":"lossy".*"status":"certified"' "$work/r1.jsonl" \
    || { echo "ci: lossy request not certified over the ARQ transport"; exit 1; }
  grep -q '"id":"killed".*"stop":"round_budget"' "$work/r1.jsonl" \
    || { echo "ci: budget-killed request lacks its typed stop"; exit 1; }

  (cd "$work" && ../bench/bench_service --quick > bench_service.txt)
  warn_flag=""
  [[ "${MWC_PERF_WARN_ONLY:-0}" == "1" ]] && warn_flag="--warn-only"
  "$dir/tools/bench_compare" bench/baselines/BENCH_SERVICE.json \
    "$work/BENCH_SERVICE.json" --threshold=0.15 --time-threshold=2.0 \
    $warn_flag \
    || { echo "ci: bench_service regressed against bench/baselines"; exit 1; }
fi

echo "ci: all requested stages passed"
