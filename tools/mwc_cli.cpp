// mwc_cli - command-line front end for the library.
//
//   mwc_cli gen <family> <n> <param> <seed> <out.graph>
//       families: random (param = m), sc-digraph (param = m),
//                 cycle-chords (param = chords), grid (param = cols),
//                 bottleneck (param = hubs)
//   mwc_cli info <graph-file>
//       prints n, m, directedness, diameter, exact MWC/girth (sequential)
//   mwc_cli run <algorithm> <graph-file> <seed> [--max-rounds=N]
//                                               [--fault-drop-prob=P]
//                                               [--fault-dup-prob=P]
//                                               [--fault-corrupt-prob=P]
//                                               [--fault-corrupt=F:T:R1:R2]
//                                               [--fault-crash=NODE:ROUND]
//                                               [--fault-recover=NODE:ROUND]
//                                               [--threads=T]
//                                               [--epsilon=E]
//                                               [--metrics[=FILE]]
//                                               [--congestion]
//                                               [--budget-rounds=N]
//                                               [--budget-words=N]
//                                               [--budget-rss-mb=N]
//                                               [--deadline=SECONDS]
//                                               [--no-progress-rounds=N]
//                                               [--stall-seconds=S]
//                                               [--checkpoint=FILE]
//                                               [--resume]
//                                               [--die-at-round=N]
//       algorithms: auto | approx | exact (cycle::solve's mode dispatch,
//                   picking the paper's algorithm for the graph class), or
//                   a specific one: girth-approx | girth-prt |
//                   directed-2approx | weighted-undirected | weighted-directed
//       prints the value, the dispatched algorithm and its promised ratio,
//       simulated rounds/messages, and (when available) the witness cycle.
//       --max-rounds caps the simulated rounds per protocol run;
//       --fault-drop-prob drops that fraction of messages on every link and
//       runs the algorithm over the reliable transport;
//       --fault-dup-prob (alias --fault-dup) delivers that fraction of
//       messages twice - the ARQ transport's sequence numbers absorb the
//       copies exactly-once, so it too forces the reliable transport;
//       --fault-corrupt-prob XOR-flips that fraction of delivered words and
//       --fault-corrupt=FROM:TO:FIRST:LAST mangles every delivery of one
//       direction during a round window (both force the checksumming
//       reliable transport - raw corrupted words would feed garbage into
//       the algorithms); --fault-crash=NODE:ROUND crash-stops a node and
//       --fault-recover=NODE:ROUND revives it later with wiped state
//       (comma-separate multiple tuples); the solve() modes print a
//       "status:" line (certified / approx_certified / degraded / failed,
//       see mwc/api.h) plus a fault ledger; --threads runs the
//       engine on T worker threads (results are bit-identical to
//       --threads=1, just faster on big inputs); --epsilon sets the
//       approximation slack of the weighted classes; --metrics prints the
//       per-phase metrics JSON (congest/metrics.h) to stdout,
//       --metrics=FILE writes it to FILE. With bare --metrics the human
//       report moves to stderr so stdout is exactly the JSON document
//       (pipe-safe: `mwc_cli run ... --metrics | python -m json.tool`).
//       --congestion (solve modes, with --metrics) attaches the congestion
//       observatory: the JSON gains a `congestion` section with top-K link
//       loads, the per-round timeline, and engine high-water marks
//       (congest/congestion.h). The JSON is byte-identical across
//       --threads values on the same seed. --trace[=FILE] streams the full
//       deterministic event sequence (every kind enabled) as JSONL to FILE
//       (default trace.jsonl); with --threads>1 a FILE.wall sidecar
//       additionally records the non-deterministic worker wall-clock spans.
//       The JSONL is byte-identical across --threads values on the same
//       seed - diff two with trace_diff.
//   mwc_cli batch <requests.jsonl> [--out=FILE] [--workers=W]
//                 [--queue-capacity=N] [--shed] [--retries=N] [--no-fallback]
//                 [--backoff-ms=MS] [--no-cache] [--annotate-cache]
//       runs every JSONL request line through the solve service
//       (mwc/service.h; schema in docs/service.md) and writes exactly one
//       JSONL response per input line, in input order, to --out (default
//       stdout). --workers solves admitted requests concurrently (response
//       bytes are identical at any worker count); --shed turns the
//       --queue-capacity bound into load-shedding (`rejected_overload`
//       responses) instead of backpressure. --retries/--no-fallback/
//       --backoff-ms tune the degradation ladder; --no-cache disables the
//       artifact cache and --annotate-cache appends a debug "cache" member
//       (off by default: it breaks cached/cold byte-identity on purpose).
//       SIGINT/SIGTERM drain every in-flight request into typed `cancelled`
//       responses - no request is ever lost. Exit code: the numeric worst
//       across responses under the `run` contract below (malformed request
//       lines and shed requests count as runtime errors, code 2).
//   mwc_cli serve [--retries=N] [--no-fallback] [--backoff-ms=MS]
//                 [--no-cache] [--annotate-cache]
//       streaming front end: reads one JSONL request per stdin line,
//       executes it immediately (no admission queue - stdin is the queue),
//       and writes one flushed JSONL response to stdout. A SIGINT/SIGTERM
//       mid-solve yields that request's `cancelled` response, then a clean
//       exit with code 5; malformed lines yield `rejected_invalid`
//       responses and the stream continues.
//   mwc_cli trace export <in.jsonl> <out.perfetto.json> [--wall=FILE]
//       converts a recorded JSONL trace into Chrome/Perfetto trace-event
//       JSON (open at ui.perfetto.dev); --wall folds a .wall sidecar in as
//       a separate, clearly-marked non-deterministic process.
//   mwc_cli report <metrics.json> <out.html> [--trace=FILE] [--title=NAME]
//       renders a metrics snapshot (plus, optionally, its JSONL trace) into
//       a self-contained HTML dashboard: phase waterfall, round heatmap,
//       congestion top-K, bound-adherence table. No JavaScript, no external
//       references; a pure function of the inputs, so reports built from
//       byte-identical metrics/trace pairs are byte-identical themselves.
//
//       Resource governance (solve() modes only; see docs/governance.md):
//       --budget-rounds / --budget-words cap the engine's accumulated
//       totals (deterministic - the stop lands on the same round at every
//       thread count); --deadline is a wall-clock budget in seconds and
//       --budget-rss-mb a resident-memory cap (both non-deterministic);
//       --no-progress-rounds aborts a phase whose settled-word counter
//       stopped moving; --stall-seconds arms a watchdog thread for a wedged
//       round loop. SIGINT/SIGTERM cancel the solve cooperatively at the
//       next round boundary. All of these degrade the report to an anytime
//       answer with explicit "bounds:" instead of hanging or dying
//       empty-handed. --checkpoint=FILE snapshots the solve at stage
//       boundaries (atomic rename; versioned format); --resume restarts a
//       killed solve from FILE and replays deterministically, making the
//       final report, metrics, and trace byte-identical to an uninterrupted
//       run. --die-at-round=N SIGKILLs the process at engine round N - the
//       test/CI hook behind the checkpoint determinism suite.
//
// Exit status (kept in sync with kExit* below and README "Exit codes"):
//   0  success (solve() modes: a certified or approx_certified answer)
//   1  usage errors
//   2  runtime errors (bad input files, failed runs with nothing
//      salvageable, refused checkpoint resumes)
//   3  degraded best-effort answer (faults interfered or no validated
//      witness; the value is an upper bound, not certified minimal)
//   4  a resource budget (rounds, words, deadline, memory, no-progress,
//      stall) ended the solve early; the report carries explicit bounds
//   5  cancelled by SIGINT/SIGTERM (or a tripped CancelToken)
#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <stdexcept>
#include <string>
#include <vector>

#ifdef __unix__
#include <unistd.h>  // truncate() for --resume trace-log rollback
#endif

#include "congest/checkpoint.h"
#include "congest/governor.h"

#include "congest/metrics.h"
#include "congest/network.h"
#include "congest/trace.h"
#include "congest/trace_export.h"
#include "mwc/api.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "graph/sequential.h"
#include "mwc/directed_mwc.h"
#include "mwc/exact.h"
#include "mwc/girth_approx.h"
#include "mwc/girth_prt.h"
#include "mwc/service.h"
#include "mwc/weighted_mwc.h"
#include "report_html.h"
#include "support/check.h"
#include "support/flags.h"
#include "support/json.h"
#include "support/rng.h"

namespace {

using namespace mwc;  // NOLINT

// The exit-code contract of `mwc_cli run` (mirrored in the header comment
// above and README "Exit codes"). 1 is reserved for usage errors (usage()
// returns it) and 2 for runtime errors (main's catch block).
enum ExitCode : int {
  kExitOk = 0,
  kExitUsage = 1,
  kExitError = 2,
  kExitDegraded = 3,
  kExitBudgetExhausted = 4,
  kExitCancelled = 5,
};

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  mwc_cli gen <random|sc-digraph|cycle-chords|grid|bottleneck>"
               " <n> <param> <seed> <out.graph>\n"
               "  mwc_cli info <graph-file>\n"
               "  mwc_cli run <auto|approx|exact|girth-approx|girth-prt|"
               "directed-2approx|weighted-undirected|weighted-directed>"
               " <graph-file> <seed> [--max-rounds=N] [--fault-drop-prob=P]"
               " [--fault-dup-prob=P] [--fault-corrupt-prob=P]"
               " [--fault-corrupt=F:T:R1:R2]"
               " [--fault-crash=NODE:ROUND] [--fault-recover=NODE:ROUND]"
               " [--threads=T] [--epsilon=E] [--metrics[=FILE]]"
               " [--congestion] [--trace[=FILE]]\n"
               "      governance (solve modes): [--budget-rounds=N]"
               " [--budget-words=N] [--budget-rss-mb=N] [--deadline=SECONDS]"
               " [--no-progress-rounds=N] [--stall-seconds=S]"
               " [--checkpoint[=FILE]] [--resume] [--die-at-round=N]\n"
               "  mwc_cli batch <requests.jsonl> [--out=FILE] [--workers=W]"
               " [--queue-capacity=N] [--shed] [--retries=N] [--no-fallback]"
               " [--backoff-ms=MS] [--no-cache] [--annotate-cache]\n"
               "  mwc_cli serve [--retries=N] [--no-fallback]"
               " [--backoff-ms=MS] [--no-cache] [--annotate-cache]\n"
               "  mwc_cli trace export <in.jsonl> <out.perfetto.json>"
               " [--wall=FILE]\n"
               "  mwc_cli report <metrics.json> <out.html> [--trace=FILE]"
               " [--title=NAME]\n");
  return 1;
}

int cmd_gen(int argc, char** argv) {
  if (argc != 7) return usage();
  const std::string family = argv[2];
  const int n = std::atoi(argv[3]);
  const int param = std::atoi(argv[4]);
  const auto seed = static_cast<std::uint64_t>(std::atoll(argv[5]));
  const std::string out = argv[6];
  support::Rng rng(seed);
  graph::WeightRange w{1, 10};
  graph::Graph g = [&] {
    if (family == "random") return graph::random_connected(n, param, w, rng);
    if (family == "sc-digraph") return graph::random_strongly_connected(n, param, w, rng);
    if (family == "cycle-chords") {
      return graph::cycle_with_chords(n, param, graph::WeightRange{1, 1}, rng);
    }
    if (family == "grid") {
      return graph::grid(n / param, param, false, graph::WeightRange{1, 1}, rng);
    }
    if (family == "bottleneck") return graph::bottleneck_digraph(n, param, rng);
    throw std::runtime_error("unknown family: " + family);
  }();
  graph::save_graph_file(g, out);
  std::printf("wrote %s: %s, n=%d, m=%d\n", out.c_str(),
              g.is_directed() ? "directed" : "undirected", g.node_count(),
              g.edge_count());
  return 0;
}

// Parses a fault-flag value: comma-separated tuples of `arity` unsigned
// fields joined by ':' ("3:120" or "0:1:50:80,2:3:10:20").
std::vector<std::vector<std::uint64_t>> parse_fault_tuples(
    const std::string& text, std::size_t arity, const char* flag) {
  std::vector<std::vector<std::uint64_t>> out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t comma = text.find(',', pos);
    if (comma == std::string::npos) comma = text.size();
    const std::string item = text.substr(pos, comma - pos);
    std::vector<std::uint64_t> tuple;
    std::size_t p = 0;
    while (p <= item.size()) {
      std::size_t colon = item.find(':', p);
      if (colon == std::string::npos) colon = item.size();
      const std::string field = item.substr(p, colon - p);
      if (field.empty() ||
          field.find_first_not_of("0123456789") != std::string::npos) {
        throw std::runtime_error(std::string("--") + flag +
                                 ": malformed tuple '" + item + "'");
      }
      tuple.push_back(std::strtoull(field.c_str(), nullptr, 10));
      if (colon == item.size()) break;
      p = colon + 1;
    }
    if (tuple.size() != arity) {
      throw std::runtime_error(std::string("--") + flag + ": expected " +
                               std::to_string(arity) +
                               " ':'-separated fields in '" + item + "'");
    }
    out.push_back(std::move(tuple));
    pos = comma + 1;
  }
  return out;
}

// One registry drives cmd_run's whole flag surface: the parser's known
// list, the shared numeric validation, and the fault-tuple arities all come
// from this table instead of each flag re-implementing its own checks.
struct RunFlagSpec {
  enum class Kind {
    kUint,     // non-negative integer
    kProb,     // probability in [0, 1)
    kSeconds,  // non-negative double
    kDouble,   // double, constraint checked at the use site
    kTuples2,  // comma-separated NODE:ROUND tuples
    kTuples4,  // comma-separated FROM:TO:FIRST:LAST tuples
    kName,     // string or optional-value boolean
  };
  const char* name;
  Kind kind;
};

constexpr RunFlagSpec kRunFlags[] = {
    {"max-rounds", RunFlagSpec::Kind::kUint},
    {"fault-drop-prob", RunFlagSpec::Kind::kProb},
    {"fault-dup-prob", RunFlagSpec::Kind::kProb},
    {"fault-dup", RunFlagSpec::Kind::kProb},  // alias of --fault-dup-prob
    {"fault-corrupt-prob", RunFlagSpec::Kind::kProb},
    {"fault-corrupt", RunFlagSpec::Kind::kTuples4},
    {"fault-crash", RunFlagSpec::Kind::kTuples2},
    {"fault-recover", RunFlagSpec::Kind::kTuples2},
    {"threads", RunFlagSpec::Kind::kUint},
    {"epsilon", RunFlagSpec::Kind::kDouble},
    {"metrics", RunFlagSpec::Kind::kName},
    {"congestion", RunFlagSpec::Kind::kName},
    {"trace", RunFlagSpec::Kind::kName},
    {"budget-rounds", RunFlagSpec::Kind::kUint},
    {"budget-words", RunFlagSpec::Kind::kUint},
    {"budget-rss-mb", RunFlagSpec::Kind::kUint},
    {"deadline", RunFlagSpec::Kind::kSeconds},
    {"no-progress-rounds", RunFlagSpec::Kind::kUint},
    {"stall-seconds", RunFlagSpec::Kind::kSeconds},
    {"checkpoint", RunFlagSpec::Kind::kName},
    {"resume", RunFlagSpec::Kind::kName},
    {"die-at-round", RunFlagSpec::Kind::kUint},
};

std::vector<std::string> run_flag_names() {
  std::vector<std::string> names;
  for (const RunFlagSpec& spec : kRunFlags) names.emplace_back(spec.name);
  return names;
}

// Kind-driven range checks; prints the offending flag and returns false.
bool validate_run_flags(const support::Flags& flags) {
  for (const RunFlagSpec& spec : kRunFlags) {
    if (!flags.has(spec.name)) continue;
    switch (spec.kind) {
      case RunFlagSpec::Kind::kProb: {
        const double v = flags.get_double(spec.name, 0.0);
        if (v < 0.0 || v >= 1.0) {
          std::fprintf(stderr, "--%s must be in [0, 1)\n", spec.name);
          return false;
        }
        break;
      }
      case RunFlagSpec::Kind::kSeconds: {
        if (flags.get_double(spec.name, 0.0) < 0.0) {
          std::fprintf(stderr, "--%s must be >= 0\n", spec.name);
          return false;
        }
        break;
      }
      case RunFlagSpec::Kind::kUint: {
        if (flags.get_int(spec.name, 0) < 0) {
          std::fprintf(stderr, "--%s must be >= 0\n", spec.name);
          return false;
        }
        break;
      }
      default:
        break;
    }
  }
  return true;
}

// Tuple arity looked up from the registry, so the parse call sites cannot
// drift from the documented flag shapes.
std::vector<std::vector<std::uint64_t>> run_flag_tuples(
    const support::Flags& flags, const char* name) {
  for (const RunFlagSpec& spec : kRunFlags) {
    if (std::string(spec.name) != name) continue;
    const std::size_t arity =
        spec.kind == RunFlagSpec::Kind::kTuples2 ? 2 : 4;
    return parse_fault_tuples(flags.get(name, ""), arity, name);
  }
  throw std::runtime_error(std::string("not a tuple flag: --") + name);
}

int cmd_info(int argc, char** argv) {
  if (argc != 3) return usage();
  graph::Graph g = graph::load_graph_file(argv[2]);
  std::printf("%s graph: n=%d m=%d W=%lld\n",
              g.is_directed() ? "directed" : "undirected", g.node_count(),
              g.edge_count(), static_cast<long long>(g.max_weight()));
  std::printf("communication diameter D = %d\n",
              graph::seq::communication_diameter(g));
  graph::Weight mwc_value = graph::seq::mwc(g);
  if (mwc_value == graph::kInfWeight) {
    std::printf("minimum weight cycle: none (acyclic)\n");
  } else {
    std::printf("minimum weight cycle: %lld\n", static_cast<long long>(mwc_value));
    if (!g.is_directed()) {
      std::printf("girth (unweighted):   %lld\n",
                  static_cast<long long>(graph::seq::girth(g)));
    }
  }
  return 0;
}

int cmd_run(int argc, char** argv) {
  support::Flags flags(argc, argv, run_flag_names());
  if (!flags.unknown_flags().empty()) {
    std::fprintf(stderr, "unknown flag: --%s\n",
                 flags.unknown_flags()[0].c_str());
    return usage();
  }
  if (!validate_run_flags(flags)) return usage();
  // positional() = {"run", algo, graph-file, seed}.
  if (flags.positional().size() != 4) return usage();
  const std::string algo = flags.positional()[1];
  const bool solve_mode = algo == "auto" || algo == "approx" || algo == "exact";
  graph::Graph g = graph::load_graph_file(flags.positional()[2]);
  const auto seed =
      static_cast<std::uint64_t>(std::atoll(flags.positional()[3].c_str()));

  congest::NetworkConfig cfg;
  cfg.max_rounds_per_run = static_cast<std::uint64_t>(flags.get_int(
      "max-rounds", static_cast<std::int64_t>(cfg.max_rounds_per_run)));
  const double drop = flags.get_double("fault-drop-prob", 0.0);
  if (drop > 0.0) {
    cfg.faults.drop_prob = drop;
    cfg.reliable_transport = true;  // lossy links need the ARQ layer
  }
  const double dup = std::max(flags.get_double("fault-dup-prob", 0.0),
                              flags.get_double("fault-dup", 0.0));
  if (dup > 0.0) {
    cfg.faults.dup_prob = dup;
    // Raw duplicate deliveries would double-count protocol messages; the
    // ARQ transport's sequence numbers absorb them exactly-once.
    cfg.reliable_transport = true;
  }
  const double corrupt = flags.get_double("fault-corrupt-prob", 0.0);
  if (corrupt > 0.0) cfg.faults.corrupt_prob = corrupt;
  for (const auto& t : run_flag_tuples(flags, "fault-corrupt")) {
    cfg.faults.corrupt_windows.push_back(
        congest::CorruptFault{static_cast<graph::NodeId>(t[0]),
                              static_cast<graph::NodeId>(t[1]), t[2], t[3]});
  }
  if (cfg.faults.has_corruption()) {
    // Raw flipped words would reach the algorithms' unpack paths as
    // garbage; corruption is only meaningful under the checksumming ARQ.
    cfg.reliable_transport = true;
  }
  for (const auto& t : run_flag_tuples(flags, "fault-crash")) {
    cfg.faults.crashes.push_back(
        congest::CrashFault{static_cast<graph::NodeId>(t[0]), t[1]});
  }
  for (const auto& t : run_flag_tuples(flags, "fault-recover")) {
    cfg.faults.recovers.push_back(
        congest::RecoverFault{static_cast<graph::NodeId>(t[0]), t[1]});
  }
  cfg.threads = static_cast<int>(flags.get_int("threads", 1));
  if (cfg.threads < 1) {
    std::fprintf(stderr, "--threads must be >= 1\n");
    return usage();
  }
  // An explicit --threads=T is a request, not a hint: honor it even beyond
  // hardware concurrency (results are bit-identical either way; CI relies
  // on oversubscribed runs to shake out scheduling races).
  cfg.clamp_threads = false;
  const double epsilon = flags.get_double("epsilon", 0.5);
  if (epsilon <= 0.0) {
    std::fprintf(stderr, "--epsilon must be > 0\n");
    return usage();
  }
  const bool want_metrics = flags.has("metrics");
  // Bare --metrics parses as the value "true": print to stdout.
  const std::string metrics_file = [&]() -> std::string {
    const std::string v = flags.get("metrics", "");
    return v == "true" ? "" : v;
  }();
  // Bare --metrics owns stdout: the JSON document must be the only thing
  // there (pipe-safe), so the human-readable report moves to stderr. With
  // --metrics=FILE (or no --metrics) the report stays on stdout as before.
  std::FILE* rpt = (want_metrics && metrics_file.empty()) ? stderr : stdout;
  const bool want_congestion = flags.has("congestion");
  const bool want_trace = flags.has("trace");
  // Bare --trace parses as the value "true": use the default file name.
  const std::string trace_file = [&]() -> std::string {
    const std::string v = flags.get("trace", "");
    return v == "true" ? "trace.jsonl" : v;
  }();

  // Resource governance (solve modes only; see docs/governance.md).
  congest::Budget budget;
  budget.max_rounds =
      static_cast<std::uint64_t>(flags.get_int("budget-rounds", 0));
  budget.max_words =
      static_cast<std::uint64_t>(flags.get_int("budget-words", 0));
  budget.max_wall_seconds = flags.get_double("deadline", 0.0);
  budget.max_rss_bytes =
      static_cast<std::uint64_t>(flags.get_int("budget-rss-mb", 0)) << 20;
  congest::WatchdogConfig watchdog;
  watchdog.no_progress_rounds =
      static_cast<std::uint64_t>(flags.get_int("no-progress-rounds", 0));
  watchdog.stall_seconds = flags.get_double("stall-seconds", 0.0);
  const auto die_at_round =
      static_cast<std::uint64_t>(flags.get_int("die-at-round", 0));
  const bool want_ckpt = flags.has("checkpoint");
  // Bare --checkpoint parses as the value "true": use the default file name.
  const std::string ckpt_file = [&]() -> std::string {
    const std::string v = flags.get("checkpoint", "");
    return v == "true" ? "mwc.ckpt" : v;
  }();
  const bool resume = flags.has("resume");
  if (!solve_mode && (budget.any() || watchdog.any() || die_at_round != 0 ||
                      want_ckpt || resume)) {
    std::fprintf(stderr,
                 "governance flags (--budget-*, --deadline, "
                 "--no-progress-rounds, --stall-seconds, --checkpoint, "
                 "--resume, --die-at-round) require a solve mode "
                 "(auto|approx|exact)\n");
    return usage();
  }
  if (resume && !want_ckpt) {
    std::fprintf(stderr, "--resume requires --checkpoint[=FILE]\n");
    return usage();
  }
  if (want_congestion && (!solve_mode || !want_metrics)) {
    // The metrics snapshot is the ledger's only output channel.
    std::fprintf(stderr,
                 "--congestion requires a solve mode (auto|approx|exact) "
                 "and --metrics[=FILE]\n");
    return usage();
  }

  congest::Network net(g, seed, cfg);

  // Load the checkpoint before touching the trace log: resume needs its
  // recorded trace offset to roll the log back to the cut.
  congest::CheckpointSession ckpt_session(ckpt_file);
  if (resume) {
    std::string error;
    if (!ckpt_session.load(&error)) {
      throw std::runtime_error("cannot resume from " + ckpt_file + ": " +
                               error);
    }
  }

  // Full-vocabulary trace streamed to disk as it happens; the in-memory
  // ring only serves as a small recent-events window. On --resume the log
  // is truncated to the checkpoint's recorded offset and appended to, so
  // the finished file is byte-identical to an uninterrupted run's; the
  // printed event count continues from the recorded one for the same
  // reason.
  std::FILE* trace_out = nullptr;
  std::uint64_t trace_base_events = 0;
  if (want_trace) {
    if (resume) {
      const congest::TracePosition pos = ckpt_session.trace_position();
#ifdef __unix__
      if (::truncate(trace_file.c_str(), static_cast<off_t>(pos.bytes)) != 0 &&
          errno != ENOENT) {
        std::fprintf(stderr, "cannot truncate %s\n", trace_file.c_str());
        return kExitError;
      }
#endif
      trace_base_events = pos.events;
      trace_out = std::fopen(trace_file.c_str(), "a");
      if (trace_out != nullptr) std::fseek(trace_out, 0, SEEK_END);
    } else {
      trace_out = std::fopen(trace_file.c_str(), "w");
    }
    if (trace_out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", trace_file.c_str());
      return kExitError;
    }
  }
  congest::Trace trace(1 << 12, congest::TraceOptions::full());
  congest::JsonlSink trace_sink(trace_out);
  if (want_trace) {
    trace.add_sink(&trace_sink);
    net.attach_trace(&trace);
  }

  // The solve() modes profile themselves; the specific legacy algorithms
  // get an externally attached sink so --metrics works uniformly.
  congest::Metrics sink;
  if (want_metrics) net.attach_metrics(&sink);

  cycle::MwcResult result;
  congest::MetricsSnapshot metrics;
  int exit_code = kExitOk;
  if (solve_mode) {
    // Every solve runs governed: SIGINT/SIGTERM cancel cooperatively at the
    // next round boundary even when no budget flag was given.
    congest::CancelToken cancel;
    cancel.bind_process_signals();
    congest::Governor governor(budget, watchdog);
    governor.set_cancel_token(&cancel);
    governor.die_at_round = die_at_round;

    cycle::SolveOptions opts;
    opts.mode = algo == "auto"
                    ? cycle::SolveMode::kAuto
                    : (algo == "approx" ? cycle::SolveMode::kApprox
                                        : cycle::SolveMode::kExact);
    opts.epsilon = epsilon;
    opts.collect_metrics = want_metrics;
    opts.congestion.enabled = want_congestion;
    opts.governor = &governor;
    if (want_ckpt) {
      opts.checkpoint = &ckpt_session;
      ckpt_session.set_trace_probe([&]() {
        congest::TracePosition pos;
        if (want_trace) {
          trace_sink.flush();
          pos.bytes = static_cast<std::uint64_t>(std::ftell(trace_out));
          pos.events = trace_base_events + trace_sink.lines_written();
        }
        return pos;
      });
    }
    cycle::MwcReport report = cycle::solve(net, opts);
    const congest::StopReason stop = report.stop.reason;
    if (report.status == cycle::SolveStatus::kFailed &&
        stop == congest::StopReason::kNone) {
      // The reason names the outcome ("run aborted (round_limit_exceeded)
      // ..."); surfaced as a runtime error, exit code 2. Governed stops
      // fall through instead: even a failed anytime report prints its
      // bounds and exits with the budget/cancel code.
      throw std::runtime_error(report.status_reason);
    }
    std::fprintf(rpt, "algorithm: %s\nguarantee: %g\n",
                 report.algorithm.c_str(), report.guarantee);
    std::fprintf(rpt, "status: %s (%s)\n", cycle::to_string(report.status),
                 report.status_reason.c_str());
    if (stop != congest::StopReason::kNone) {
      std::fprintf(rpt, "stop: %s (%s)\n", congest::to_string(stop),
                   report.stop.detail.c_str());
    }
    const auto bound_str = [](graph::Weight w) {
      return w == graph::kInfWeight
                 ? std::string("inf")
                 : std::to_string(static_cast<long long>(w));
    };
    std::fprintf(rpt, "bounds: %s <= mwc <= %s\n",
                 bound_str(report.lower_bound).c_str(),
                 bound_str(report.upper_bound).c_str());
    if (stop == congest::StopReason::kCancelled) {
      exit_code = kExitCancelled;
    } else if (stop != congest::StopReason::kNone) {
      exit_code = kExitBudgetExhausted;
    } else if (report.status == cycle::SolveStatus::kDegraded) {
      exit_code = kExitDegraded;
    }
    result = std::move(report.result);
    metrics = std::move(report.metrics);
  } else {
    result = [&] {
      cycle::WeightedMwcParams wp;
      wp.epsilon = epsilon;
      if (algo == "girth-approx") return cycle::girth_approx(net);
      if (algo == "girth-prt") return cycle::girth_prt(net);
      if (algo == "directed-2approx") return cycle::directed_mwc_2approx(net);
      if (algo == "weighted-undirected") {
        return cycle::undirected_weighted_mwc(net, wp);
      }
      if (algo == "weighted-directed") {
        return cycle::directed_weighted_mwc(net, wp);
      }
      throw std::runtime_error("unknown algorithm: " + algo);
    }();
    metrics = sink.snapshot();
  }
  net.attach_metrics(nullptr);

  if (result.value == graph::kInfWeight) {
    std::fprintf(rpt, "value: none (no cycle found)\n");
  } else {
    std::fprintf(rpt, "value: %lld\n", static_cast<long long>(result.value));
  }
  std::fprintf(rpt, "rounds: %llu\nmessages: %llu\nwords: %llu\n",
               static_cast<unsigned long long>(result.stats.rounds),
               static_cast<unsigned long long>(result.stats.messages),
               static_cast<unsigned long long>(result.stats.words));
  if (drop > 0.0) {
    std::fprintf(
        rpt,
        "dropped: %llu messages (%llu words)\n"
        "retransmitted: %llu words\n",
        static_cast<unsigned long long>(result.stats.dropped_messages),
        static_cast<unsigned long long>(result.stats.dropped_words),
        static_cast<unsigned long long>(result.stats.retransmitted_words));
  }
  if (cfg.faults.any()) {
    std::fprintf(
        rpt,
        "faults: %llu crashes, %llu recoveries, %llu corrupted words, "
        "%llu duplicated messages, %llu checksum rejects, %llu dead links\n",
        static_cast<unsigned long long>(result.stats.crashes),
        static_cast<unsigned long long>(result.stats.recoveries),
        static_cast<unsigned long long>(result.stats.corrupted_words),
        static_cast<unsigned long long>(result.stats.dup_messages),
        static_cast<unsigned long long>(result.stats.checksum_rejects),
        static_cast<unsigned long long>(result.stats.dead_links));
  }
  if (!result.witness.empty()) {
    std::fprintf(rpt, "witness:");
    for (graph::NodeId v : result.witness) std::fprintf(rpt, " %d", v);
    std::fprintf(rpt, "\n");
  }
  if (want_metrics) {
    const std::string json = metrics.to_json();
    if (metrics_file.empty()) {
      std::printf("%s", json.c_str());
    } else {
      std::FILE* f = std::fopen(metrics_file.c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", metrics_file.c_str());
        return kExitError;
      }
      std::fprintf(f, "%s", json.c_str());
      std::fclose(f);
      std::fprintf(rpt, "metrics: wrote %s\n", metrics_file.c_str());
    }
  }
  if (want_trace) {
    net.attach_trace(nullptr);
    trace_sink.flush();
    std::fclose(trace_out);
    std::fprintf(rpt, "trace: wrote %s (%llu events)\n", trace_file.c_str(),
                 static_cast<unsigned long long>(trace_base_events +
                                                 trace_sink.lines_written()));
    if (!trace.wall_spans().empty()) {
      const std::string wall_file = trace_file + ".wall";
      std::FILE* wf = std::fopen(wall_file.c_str(), "w");
      if (wf == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", wall_file.c_str());
        return kExitError;
      }
      for (const congest::WallSpan& span : trace.wall_spans()) {
        const std::string line = congest::to_jsonl(span);
        std::fprintf(wf, "%s\n", line.c_str());
      }
      std::fclose(wf);
      std::fprintf(rpt,
                   "trace: wrote %s (%llu wall spans, non-deterministic)\n",
                   wall_file.c_str(),
                   static_cast<unsigned long long>(trace.wall_spans().size()));
    }
  }
  return exit_code;
}

// --- solve-service front ends (mwc/service.h; docs/service.md) ----------

// The per-response exit code under the `run` contract; the batch exit is
// the numeric maximum across responses (5 cancelled > 4 budget > 3
// degraded > 2 error > 0 ok).
int response_exit_code(const service::ServiceResponse& r) {
  if (r.admission != service::Admission::kAdmitted) return kExitError;
  if (r.stop == congest::StopReason::kCancelled) return kExitCancelled;
  if (r.stop != congest::StopReason::kNone) return kExitBudgetExhausted;
  if (r.certified()) return kExitOk;
  if (r.status == cycle::SolveStatus::kDegraded) return kExitDegraded;
  return kExitError;
}

// Best-effort id for a request line that failed strict parsing, so its
// `rejected_invalid` response still correlates with the caller's ledger.
std::string salvage_request_id(const std::string& line, std::size_t line_no) {
  support::JsonValue root;
  if (support::parse_json(line, root) && root.is_object()) {
    const std::string_view id = root.string_or("id", "");
    if (!id.empty() && id.size() <= 128) return std::string(id);
  }
  return "line-" + std::to_string(line_no);
}

const std::vector<std::string>& service_flag_names() {
  static const std::vector<std::string> names = {
      "out",      "workers",     "queue-capacity", "shed",          "retries",
      "no-fallback", "backoff-ms", "no-cache",     "annotate-cache"};
  return names;
}

bool service_config_from_flags(const support::Flags& flags,
                               service::ServiceConfig& cfg) {
  cfg.workers = static_cast<int>(flags.get_int("workers", 1));
  if (cfg.workers < 1) {
    std::fprintf(stderr, "--workers must be >= 1\n");
    return false;
  }
  const std::int64_t capacity =
      flags.get_int("queue-capacity",
                    static_cast<std::int64_t>(cfg.queue_capacity));
  if (capacity < 0) {
    std::fprintf(stderr, "--queue-capacity must be >= 0\n");
    return false;
  }
  cfg.queue_capacity = static_cast<std::size_t>(capacity);
  cfg.shed_on_overload = flags.has("shed");
  const std::int64_t retries =
      flags.get_int("retries", cfg.ladder.max_retries);
  if (retries < 0 || retries > 16) {
    std::fprintf(stderr, "--retries must be in [0, 16]\n");
    return false;
  }
  cfg.ladder.max_retries = static_cast<int>(retries);
  cfg.ladder.fallback_to_approx = !flags.has("no-fallback");
  const double backoff = flags.get_double("backoff-ms", 0.0);
  if (backoff < 0.0) {
    std::fprintf(stderr, "--backoff-ms must be >= 0\n");
    return false;
  }
  cfg.ladder.backoff_base_ms = backoff;
  cfg.cache.enabled = !flags.has("no-cache");
  cfg.annotate_cache = flags.has("annotate-cache");
  return true;
}

// `mwc_cli batch <requests.jsonl> [--out=FILE] [--workers=W] ...`.
int cmd_batch(int argc, char** argv) {
  support::Flags flags(argc, argv, service_flag_names());
  if (!flags.unknown_flags().empty()) {
    std::fprintf(stderr, "unknown flag: --%s\n",
                 flags.unknown_flags()[0].c_str());
    return usage();
  }
  // positional() = {"batch", requests.jsonl}.
  if (flags.positional().size() != 2) return usage();
  service::ServiceConfig cfg;
  if (!service_config_from_flags(flags, cfg)) return usage();
  const std::string in_file = flags.positional()[1];
  const std::string out_file = flags.get("out", "");

  std::FILE* in = std::fopen(in_file.c_str(), "r");
  if (in == nullptr) throw std::runtime_error("cannot read " + in_file);
  std::vector<std::string> lines;
  {
    std::string line;
    int c;
    while ((c = std::fgetc(in)) != EOF) {
      if (c != '\n') {
        line += static_cast<char>(c);
        continue;
      }
      lines.push_back(line);
      line.clear();
    }
    if (!line.empty()) lines.push_back(line);
    std::fclose(in);
  }

  // Every input line gets exactly one response slot, in input order -
  // malformed lines included (they are rejected, never dropped).
  std::vector<service::ServiceResponse> responses(lines.size());
  std::vector<service::ServiceRequest> requests;
  std::vector<std::size_t> request_line;  // request index -> line index
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (lines[i].empty()) {
      responses[i].id = "line-" + std::to_string(i + 1);
      responses[i].admission = service::Admission::kRejectedInvalid;
      responses[i].error = "empty request line";
      continue;
    }
    service::ServiceRequest rq;
    std::string error;
    if (!service::parse_request(lines[i], rq, &error, cfg.max_nodes)) {
      responses[i].id = salvage_request_id(lines[i], i + 1);
      responses[i].admission = service::Admission::kRejectedInvalid;
      responses[i].error = error;
      continue;
    }
    requests.push_back(std::move(rq));
    request_line.push_back(i);
  }

  service::SolveService svc(cfg);
  svc.bind_signals();
  std::vector<service::ServiceResponse> solved = svc.run_batch(requests);
  for (std::size_t k = 0; k < solved.size(); ++k) {
    responses[request_line[k]] = std::move(solved[k]);
  }
  const int signal = service::SolveService::take_signal();

  std::FILE* out = stdout;
  if (!out_file.empty()) {
    out = std::fopen(out_file.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", out_file.c_str());
      return kExitError;
    }
  }
  int exit_code = signal != 0 ? kExitCancelled : kExitOk;
  for (const service::ServiceResponse& r : responses) {
    const std::string line = r.to_jsonl(cfg.annotate_cache);
    std::fprintf(out, "%s\n", line.c_str());
    exit_code = std::max(exit_code, response_exit_code(r));
  }
  if (out != stdout) std::fclose(out);

  const service::SolveService::Stats stats = svc.stats();
  std::fprintf(stderr,
               "batch: %llu admitted, %llu shed, %llu retries, "
               "%llu fallbacks, %llu cache hits\n",
               static_cast<unsigned long long>(stats.admitted),
               static_cast<unsigned long long>(stats.shed),
               static_cast<unsigned long long>(stats.retries),
               static_cast<unsigned long long>(stats.fallbacks),
               static_cast<unsigned long long>(stats.cache_hits));
  return exit_code;
}

// `mwc_cli serve [...]`: one JSONL request per stdin line, one flushed
// JSONL response per stdout line. stdin is the admission queue.
int cmd_serve(int argc, char** argv) {
  support::Flags flags(argc, argv, service_flag_names());
  if (!flags.unknown_flags().empty()) {
    std::fprintf(stderr, "unknown flag: --%s\n",
                 flags.unknown_flags()[0].c_str());
    return usage();
  }
  // positional() = {"serve"}.
  if (flags.positional().size() != 1) return usage();
  service::ServiceConfig cfg;
  if (!service_config_from_flags(flags, cfg)) return usage();
  cfg.workers = 1;  // the stream is processed in arrival order

  service::SolveService svc(cfg);
  svc.bind_signals();
  std::string line;
  std::size_t line_no = 0;
  int c;
  const auto handle_line = [&]() -> bool {
    ++line_no;
    if (line.empty()) return true;
    service::ServiceResponse resp;
    service::ServiceRequest rq;
    std::string error;
    if (!service::parse_request(line, rq, &error, cfg.max_nodes)) {
      resp.id = salvage_request_id(line, line_no);
      resp.admission = service::Admission::kRejectedInvalid;
      resp.error = error;
    } else {
      resp = svc.execute(rq);
    }
    const std::string out = resp.to_jsonl(cfg.annotate_cache);
    std::printf("%s\n", out.c_str());
    std::fflush(stdout);
    // A delivered signal cancels the in-flight solve (typed response just
    // emitted); acknowledge it and stop serving.
    return service::SolveService::take_signal() == 0;
  };
  bool keep_serving = true;
  while (keep_serving && (c = std::fgetc(stdin)) != EOF) {
    if (c != '\n') {
      line += static_cast<char>(c);
      continue;
    }
    keep_serving = handle_line();
    line.clear();
  }
  if (keep_serving && !line.empty()) keep_serving = handle_line();
  return keep_serving ? kExitOk : kExitCancelled;
}

// `mwc_cli trace export <in.jsonl> <out.perfetto.json> [--wall=FILE]`.
int cmd_trace(int argc, char** argv) {
  support::Flags flags(argc, argv, {"wall"});
  if (!flags.unknown_flags().empty()) {
    std::fprintf(stderr, "unknown flag: --%s\n",
                 flags.unknown_flags()[0].c_str());
    return usage();
  }
  // positional() = {"trace", "export", in.jsonl, out.perfetto.json}.
  if (flags.positional().size() != 4 || flags.positional()[1] != "export") {
    return usage();
  }
  const std::string in_file = flags.positional()[2];
  const std::string out_file = flags.positional()[3];
  const std::string wall_file = flags.get("wall", "");

  auto read_lines = [](const std::string& path, auto&& per_line) {
    std::FILE* f = std::fopen(path.c_str(), "r");
    if (f == nullptr) throw std::runtime_error("cannot read " + path);
    std::string line;
    std::size_t line_no = 0;
    int c;
    while ((c = std::fgetc(f)) != EOF) {
      if (c != '\n') {
        line += static_cast<char>(c);
        continue;
      }
      ++line_no;
      if (!line.empty()) per_line(line, line_no);
      line.clear();
    }
    if (!line.empty()) per_line(line, ++line_no);
    std::fclose(f);
  };

  std::vector<congest::TraceEvent> events;
  read_lines(in_file, [&](const std::string& line, std::size_t line_no) {
    congest::TraceEvent e;
    std::string error;
    if (!congest::parse_trace_jsonl(line, e, &error)) {
      throw std::runtime_error(in_file + ":" + std::to_string(line_no) +
                               ": " + error);
    }
    events.push_back(std::move(e));
  });
  std::vector<congest::WallSpan> wall;
  if (!wall_file.empty()) {
    read_lines(wall_file, [&](const std::string& line, std::size_t line_no) {
      congest::WallSpan s;
      std::string error;
      if (!congest::parse_wall_jsonl(line, s, &error)) {
        throw std::runtime_error(wall_file + ":" + std::to_string(line_no) +
                                 ": " + error);
      }
      wall.push_back(std::move(s));
    });
  }

  const std::string json = congest::perfetto_trace_json(events, wall);
  std::FILE* f = std::fopen(out_file.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_file.c_str());
    return kExitError;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("trace: exported %zu events", events.size());
  if (!wall.empty()) std::printf(" + %zu wall spans", wall.size());
  std::printf(" to %s (open at ui.perfetto.dev)\n", out_file.c_str());
  return 0;
}

// `mwc_cli report <metrics.json> <out.html> [--trace=FILE] [--title=NAME]`.
// Renders a recorded metrics snapshot (and optionally its JSONL trace) into
// a self-contained HTML dashboard. The output is a pure function of the
// parsed inputs and the title - byte-identical metrics in, byte-identical
// HTML out - so CI can diff reports across thread counts.
int cmd_report(int argc, char** argv) {
  support::Flags flags(argc, argv, {"trace", "title"});
  if (!flags.unknown_flags().empty()) {
    std::fprintf(stderr, "unknown flag: --%s\n",
                 flags.unknown_flags()[0].c_str());
    return usage();
  }
  // positional() = {"report", metrics.json, out.html}.
  if (flags.positional().size() != 3) return usage();
  const std::string metrics_file = flags.positional()[1];
  const std::string out_file = flags.positional()[2];
  const std::string trace_file = flags.get("trace", "");
  // The default title is deliberately run-independent; anything derived
  // from file names or clocks would break the byte-identity contract.
  const std::string title = flags.get("title", "MWC solve report");

  std::FILE* in = std::fopen(metrics_file.c_str(), "r");
  if (in == nullptr) throw std::runtime_error("cannot read " + metrics_file);
  std::string text;
  char buf[4096];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof buf, in)) > 0) text.append(buf, got);
  std::fclose(in);

  support::JsonValue metrics;
  std::string error;
  if (!support::parse_json(text, metrics, &error)) {
    throw std::runtime_error(metrics_file + ": " + error);
  }
  if (!metrics.is_object()) {
    throw std::runtime_error(metrics_file +
                             ": expected a metrics JSON object");
  }

  std::vector<congest::TraceEvent> events;
  if (!trace_file.empty()) {
    std::FILE* tf = std::fopen(trace_file.c_str(), "r");
    if (tf == nullptr) throw std::runtime_error("cannot read " + trace_file);
    std::string line;
    std::size_t line_no = 0;
    int c;
    const auto parse_line = [&] {
      ++line_no;
      if (line.empty()) return;
      congest::TraceEvent e;
      std::string trace_error;
      if (!congest::parse_trace_jsonl(line, e, &trace_error)) {
        std::fclose(tf);
        throw std::runtime_error(trace_file + ":" + std::to_string(line_no) +
                                 ": " + trace_error);
      }
      events.push_back(std::move(e));
    };
    while ((c = std::fgetc(tf)) != EOF) {
      if (c != '\n') {
        line += static_cast<char>(c);
        continue;
      }
      parse_line();
      line.clear();
    }
    if (!line.empty()) parse_line();
    std::fclose(tf);
  }

  const std::string html = tools::render_report_html(metrics, events, title);
  std::FILE* out = std::fopen(out_file.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_file.c_str());
    return kExitError;
  }
  std::fwrite(html.data(), 1, html.size(), out);
  std::fclose(out);
  std::printf("report: wrote %s (%zu bytes", out_file.c_str(), html.size());
  if (!events.empty()) std::printf(", %zu trace events", events.size());
  std::printf(")\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  // Invariant trips (e.g. an algorithm's self-check after the reliable
  // transport gave up on a hopelessly lossy link) become catchable errors
  // instead of aborting the process.
  support::ScopedChecksThrow checks_as_errors;
  try {
    if (cmd == "gen") return cmd_gen(argc, argv);
    if (cmd == "info") return cmd_info(argc, argv);
    if (cmd == "run") return cmd_run(argc, argv);
    if (cmd == "batch") return cmd_batch(argc, argv);
    if (cmd == "serve") return cmd_serve(argc, argv);
    if (cmd == "trace") return cmd_trace(argc, argv);
    if (cmd == "report") return cmd_report(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n(run 'mwc_cli' with no arguments for usage)\n",
                 e.what());
    return kExitError;
  }
  return usage();
}
