// mwc_cli - command-line front end for the library.
//
//   mwc_cli gen <family> <n> <param> <seed> <out.graph>
//       families: random (param = m), sc-digraph (param = m),
//                 cycle-chords (param = chords), grid (param = cols),
//                 bottleneck (param = hubs)
//   mwc_cli info <graph-file>
//       prints n, m, directedness, diameter, exact MWC/girth (sequential)
//   mwc_cli run <algorithm> <graph-file> <seed> [--max-rounds=N]
//                                               [--fault-drop-prob=P]
//                                               [--fault-corrupt-prob=P]
//                                               [--fault-corrupt=F:T:R1:R2]
//                                               [--fault-crash=NODE:ROUND]
//                                               [--fault-recover=NODE:ROUND]
//                                               [--threads=T]
//                                               [--epsilon=E]
//                                               [--metrics[=FILE]]
//       algorithms: auto | approx | exact (cycle::solve's mode dispatch,
//                   picking the paper's algorithm for the graph class), or
//                   a specific one: girth-approx | girth-prt |
//                   directed-2approx | weighted-undirected | weighted-directed
//       prints the value, the dispatched algorithm and its promised ratio,
//       simulated rounds/messages, and (when available) the witness cycle.
//       --max-rounds caps the simulated rounds per protocol run;
//       --fault-drop-prob drops that fraction of messages on every link and
//       runs the algorithm over the reliable transport;
//       --fault-corrupt-prob XOR-flips that fraction of delivered words and
//       --fault-corrupt=FROM:TO:FIRST:LAST mangles every delivery of one
//       direction during a round window (both force the checksumming
//       reliable transport - raw corrupted words would feed garbage into
//       the algorithms); --fault-crash=NODE:ROUND crash-stops a node and
//       --fault-recover=NODE:ROUND revives it later with wiped state
//       (comma-separate multiple tuples); the solve() modes print a
//       "status:" line (certified / approx_certified / degraded / failed,
//       see mwc/api.h) plus a fault ledger; --threads runs the
//       engine on T worker threads (results are bit-identical to
//       --threads=1, just faster on big inputs); --epsilon sets the
//       approximation slack of the weighted classes; --metrics prints the
//       per-phase metrics JSON (congest/metrics.h) to stdout,
//       --metrics=FILE writes it to FILE. The JSON is byte-identical across
//       --threads values on the same seed. --trace[=FILE] streams the full
//       deterministic event sequence (every kind enabled) as JSONL to FILE
//       (default trace.jsonl); with --threads>1 a FILE.wall sidecar
//       additionally records the non-deterministic worker wall-clock spans.
//       The JSONL is byte-identical across --threads values on the same
//       seed - diff two with trace_diff.
//   mwc_cli trace export <in.jsonl> <out.perfetto.json> [--wall=FILE]
//       converts a recorded JSONL trace into Chrome/Perfetto trace-event
//       JSON (open at ui.perfetto.dev); --wall folds a .wall sidecar in as
//       a separate, clearly-marked non-deterministic process.
//
// Exit status: 0 on success (solve() modes: a certified or
// approx_certified answer), 1 on usage errors, 2 on runtime errors (bad
// input files, failed runs with nothing salvageable), 3 when the solve()
// modes return a degraded best-effort answer (faults interfered or no
// validated witness; the value is an upper bound, not certified minimal).
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <stdexcept>
#include <string>
#include <vector>

#include "congest/metrics.h"
#include "congest/network.h"
#include "congest/trace.h"
#include "congest/trace_export.h"
#include "mwc/api.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "graph/sequential.h"
#include "mwc/directed_mwc.h"
#include "mwc/exact.h"
#include "mwc/girth_approx.h"
#include "mwc/girth_prt.h"
#include "mwc/weighted_mwc.h"
#include "support/check.h"
#include "support/flags.h"
#include "support/rng.h"

namespace {

using namespace mwc;  // NOLINT

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  mwc_cli gen <random|sc-digraph|cycle-chords|grid|bottleneck>"
               " <n> <param> <seed> <out.graph>\n"
               "  mwc_cli info <graph-file>\n"
               "  mwc_cli run <auto|approx|exact|girth-approx|girth-prt|"
               "directed-2approx|weighted-undirected|weighted-directed>"
               " <graph-file> <seed> [--max-rounds=N] [--fault-drop-prob=P]"
               " [--fault-corrupt-prob=P] [--fault-corrupt=F:T:R1:R2]"
               " [--fault-crash=NODE:ROUND] [--fault-recover=NODE:ROUND]"
               " [--threads=T] [--epsilon=E] [--metrics[=FILE]]"
               " [--trace[=FILE]]\n"
               "  mwc_cli trace export <in.jsonl> <out.perfetto.json>"
               " [--wall=FILE]\n");
  return 1;
}

int cmd_gen(int argc, char** argv) {
  if (argc != 7) return usage();
  const std::string family = argv[2];
  const int n = std::atoi(argv[3]);
  const int param = std::atoi(argv[4]);
  const auto seed = static_cast<std::uint64_t>(std::atoll(argv[5]));
  const std::string out = argv[6];
  support::Rng rng(seed);
  graph::WeightRange w{1, 10};
  graph::Graph g = [&] {
    if (family == "random") return graph::random_connected(n, param, w, rng);
    if (family == "sc-digraph") return graph::random_strongly_connected(n, param, w, rng);
    if (family == "cycle-chords") {
      return graph::cycle_with_chords(n, param, graph::WeightRange{1, 1}, rng);
    }
    if (family == "grid") {
      return graph::grid(n / param, param, false, graph::WeightRange{1, 1}, rng);
    }
    if (family == "bottleneck") return graph::bottleneck_digraph(n, param, rng);
    throw std::runtime_error("unknown family: " + family);
  }();
  graph::save_graph_file(g, out);
  std::printf("wrote %s: %s, n=%d, m=%d\n", out.c_str(),
              g.is_directed() ? "directed" : "undirected", g.node_count(),
              g.edge_count());
  return 0;
}

// Parses a fault-flag value: comma-separated tuples of `arity` unsigned
// fields joined by ':' ("3:120" or "0:1:50:80,2:3:10:20").
std::vector<std::vector<std::uint64_t>> parse_fault_tuples(
    const std::string& text, std::size_t arity, const char* flag) {
  std::vector<std::vector<std::uint64_t>> out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t comma = text.find(',', pos);
    if (comma == std::string::npos) comma = text.size();
    const std::string item = text.substr(pos, comma - pos);
    std::vector<std::uint64_t> tuple;
    std::size_t p = 0;
    while (p <= item.size()) {
      std::size_t colon = item.find(':', p);
      if (colon == std::string::npos) colon = item.size();
      const std::string field = item.substr(p, colon - p);
      if (field.empty() ||
          field.find_first_not_of("0123456789") != std::string::npos) {
        throw std::runtime_error(std::string("--") + flag +
                                 ": malformed tuple '" + item + "'");
      }
      tuple.push_back(std::strtoull(field.c_str(), nullptr, 10));
      if (colon == item.size()) break;
      p = colon + 1;
    }
    if (tuple.size() != arity) {
      throw std::runtime_error(std::string("--") + flag + ": expected " +
                               std::to_string(arity) +
                               " ':'-separated fields in '" + item + "'");
    }
    out.push_back(std::move(tuple));
    pos = comma + 1;
  }
  return out;
}

int cmd_info(int argc, char** argv) {
  if (argc != 3) return usage();
  graph::Graph g = graph::load_graph_file(argv[2]);
  std::printf("%s graph: n=%d m=%d W=%lld\n",
              g.is_directed() ? "directed" : "undirected", g.node_count(),
              g.edge_count(), static_cast<long long>(g.max_weight()));
  std::printf("communication diameter D = %d\n",
              graph::seq::communication_diameter(g));
  graph::Weight mwc_value = graph::seq::mwc(g);
  if (mwc_value == graph::kInfWeight) {
    std::printf("minimum weight cycle: none (acyclic)\n");
  } else {
    std::printf("minimum weight cycle: %lld\n", static_cast<long long>(mwc_value));
    if (!g.is_directed()) {
      std::printf("girth (unweighted):   %lld\n",
                  static_cast<long long>(graph::seq::girth(g)));
    }
  }
  return 0;
}

int cmd_run(int argc, char** argv) {
  support::Flags flags(argc, argv,
                       {"max-rounds", "fault-drop-prob", "fault-corrupt-prob",
                        "fault-corrupt", "fault-crash", "fault-recover",
                        "threads", "epsilon", "metrics", "trace"});
  if (!flags.unknown_flags().empty()) {
    std::fprintf(stderr, "unknown flag: --%s\n",
                 flags.unknown_flags()[0].c_str());
    return usage();
  }
  // positional() = {"run", algo, graph-file, seed}.
  if (flags.positional().size() != 4) return usage();
  const std::string algo = flags.positional()[1];
  graph::Graph g = graph::load_graph_file(flags.positional()[2]);
  const auto seed =
      static_cast<std::uint64_t>(std::atoll(flags.positional()[3].c_str()));

  congest::NetworkConfig cfg;
  cfg.max_rounds_per_run = static_cast<std::uint64_t>(flags.get_int(
      "max-rounds", static_cast<std::int64_t>(cfg.max_rounds_per_run)));
  const double drop = flags.get_double("fault-drop-prob", 0.0);
  if (drop < 0.0 || drop >= 1.0) {
    std::fprintf(stderr, "--fault-drop-prob must be in [0, 1)\n");
    return usage();
  }
  if (drop > 0.0) {
    cfg.faults.drop_prob = drop;
    cfg.reliable_transport = true;  // lossy links need the ARQ layer
  }
  const double corrupt = flags.get_double("fault-corrupt-prob", 0.0);
  if (corrupt < 0.0 || corrupt >= 1.0) {
    std::fprintf(stderr, "--fault-corrupt-prob must be in [0, 1)\n");
    return usage();
  }
  if (corrupt > 0.0) cfg.faults.corrupt_prob = corrupt;
  for (const auto& t : parse_fault_tuples(flags.get("fault-corrupt", ""), 4,
                                          "fault-corrupt")) {
    cfg.faults.corrupt_windows.push_back(
        congest::CorruptFault{static_cast<graph::NodeId>(t[0]),
                              static_cast<graph::NodeId>(t[1]), t[2], t[3]});
  }
  if (cfg.faults.has_corruption()) {
    // Raw flipped words would reach the algorithms' unpack paths as
    // garbage; corruption is only meaningful under the checksumming ARQ.
    cfg.reliable_transport = true;
  }
  for (const auto& t :
       parse_fault_tuples(flags.get("fault-crash", ""), 2, "fault-crash")) {
    cfg.faults.crashes.push_back(
        congest::CrashFault{static_cast<graph::NodeId>(t[0]), t[1]});
  }
  for (const auto& t : parse_fault_tuples(flags.get("fault-recover", ""), 2,
                                          "fault-recover")) {
    cfg.faults.recovers.push_back(
        congest::RecoverFault{static_cast<graph::NodeId>(t[0]), t[1]});
  }
  cfg.threads = static_cast<int>(flags.get_int("threads", 1));
  if (cfg.threads < 1) {
    std::fprintf(stderr, "--threads must be >= 1\n");
    return usage();
  }
  const double epsilon = flags.get_double("epsilon", 0.5);
  if (epsilon <= 0.0) {
    std::fprintf(stderr, "--epsilon must be > 0\n");
    return usage();
  }
  const bool want_metrics = flags.has("metrics");
  // Bare --metrics parses as the value "true": print to stdout.
  const std::string metrics_file = [&]() -> std::string {
    const std::string v = flags.get("metrics", "");
    return v == "true" ? "" : v;
  }();
  const bool want_trace = flags.has("trace");
  // Bare --trace parses as the value "true": use the default file name.
  const std::string trace_file = [&]() -> std::string {
    const std::string v = flags.get("trace", "");
    return v == "true" ? "trace.jsonl" : v;
  }();
  congest::Network net(g, seed, cfg);

  // Full-vocabulary trace streamed to disk as it happens; the in-memory
  // ring only serves as a small recent-events window.
  std::FILE* trace_out = nullptr;
  if (want_trace) {
    trace_out = std::fopen(trace_file.c_str(), "w");
    if (trace_out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", trace_file.c_str());
      return 2;
    }
  }
  congest::Trace trace(1 << 12, congest::TraceOptions::full());
  congest::JsonlSink trace_sink(trace_out);
  if (want_trace) {
    trace.add_sink(&trace_sink);
    net.attach_trace(&trace);
  }

  // The solve() modes profile themselves; the specific legacy algorithms
  // get an externally attached sink so --metrics works uniformly.
  congest::Metrics sink;
  if (want_metrics) net.attach_metrics(&sink);

  cycle::MwcResult result;
  congest::MetricsSnapshot metrics;
  int exit_code = 0;
  if (algo == "auto" || algo == "approx" || algo == "exact") {
    cycle::SolveOptions opts;
    opts.mode = algo == "auto"
                    ? cycle::SolveMode::kAuto
                    : (algo == "approx" ? cycle::SolveMode::kApprox
                                        : cycle::SolveMode::kExact);
    opts.epsilon = epsilon;
    opts.collect_metrics = want_metrics;
    cycle::MwcReport report = cycle::solve(net, opts);
    if (report.status == cycle::SolveStatus::kFailed) {
      // The reason names the outcome ("run aborted (round_limit_exceeded)
      // ..."); surfaced as a runtime error, exit code 2.
      throw std::runtime_error(report.status_reason);
    }
    std::printf("algorithm: %s\nguarantee: %g\n", report.algorithm.c_str(),
                report.guarantee);
    std::printf("status: %s (%s)\n", cycle::to_string(report.status),
                report.status_reason.c_str());
    if (report.status == cycle::SolveStatus::kDegraded) exit_code = 3;
    result = std::move(report.result);
    metrics = std::move(report.metrics);
  } else {
    result = [&] {
      cycle::WeightedMwcParams wp;
      wp.epsilon = epsilon;
      if (algo == "girth-approx") return cycle::girth_approx(net);
      if (algo == "girth-prt") return cycle::girth_prt(net);
      if (algo == "directed-2approx") return cycle::directed_mwc_2approx(net);
      if (algo == "weighted-undirected") {
        return cycle::undirected_weighted_mwc(net, wp);
      }
      if (algo == "weighted-directed") {
        return cycle::directed_weighted_mwc(net, wp);
      }
      throw std::runtime_error("unknown algorithm: " + algo);
    }();
    metrics = sink.snapshot();
  }
  net.attach_metrics(nullptr);

  if (result.value == graph::kInfWeight) {
    std::printf("value: none (no cycle found)\n");
  } else {
    std::printf("value: %lld\n", static_cast<long long>(result.value));
  }
  std::printf("rounds: %llu\nmessages: %llu\nwords: %llu\n",
              static_cast<unsigned long long>(result.stats.rounds),
              static_cast<unsigned long long>(result.stats.messages),
              static_cast<unsigned long long>(result.stats.words));
  if (drop > 0.0) {
    std::printf("dropped: %llu messages (%llu words)\n"
                "retransmitted: %llu words\n",
                static_cast<unsigned long long>(result.stats.dropped_messages),
                static_cast<unsigned long long>(result.stats.dropped_words),
                static_cast<unsigned long long>(result.stats.retransmitted_words));
  }
  if (cfg.faults.any()) {
    std::printf(
        "faults: %llu crashes, %llu recoveries, %llu corrupted words, "
        "%llu checksum rejects, %llu dead links\n",
        static_cast<unsigned long long>(result.stats.crashes),
        static_cast<unsigned long long>(result.stats.recoveries),
        static_cast<unsigned long long>(result.stats.corrupted_words),
        static_cast<unsigned long long>(result.stats.checksum_rejects),
        static_cast<unsigned long long>(result.stats.dead_links));
  }
  if (!result.witness.empty()) {
    std::printf("witness:");
    for (graph::NodeId v : result.witness) std::printf(" %d", v);
    std::printf("\n");
  }
  if (want_metrics) {
    const std::string json = metrics.to_json();
    if (metrics_file.empty()) {
      std::printf("%s\n", json.c_str());
    } else {
      std::FILE* f = std::fopen(metrics_file.c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", metrics_file.c_str());
        return 2;
      }
      std::fprintf(f, "%s\n", json.c_str());
      std::fclose(f);
      std::printf("metrics: wrote %s\n", metrics_file.c_str());
    }
  }
  if (want_trace) {
    net.attach_trace(nullptr);
    trace_sink.flush();
    std::fclose(trace_out);
    std::printf("trace: wrote %s (%llu events)\n", trace_file.c_str(),
                static_cast<unsigned long long>(trace_sink.lines_written()));
    if (!trace.wall_spans().empty()) {
      const std::string wall_file = trace_file + ".wall";
      std::FILE* wf = std::fopen(wall_file.c_str(), "w");
      if (wf == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", wall_file.c_str());
        return 2;
      }
      for (const congest::WallSpan& span : trace.wall_spans()) {
        const std::string line = congest::to_jsonl(span);
        std::fprintf(wf, "%s\n", line.c_str());
      }
      std::fclose(wf);
      std::printf("trace: wrote %s (%llu wall spans, non-deterministic)\n",
                  wall_file.c_str(),
                  static_cast<unsigned long long>(trace.wall_spans().size()));
    }
  }
  return exit_code;
}

// `mwc_cli trace export <in.jsonl> <out.perfetto.json> [--wall=FILE]`.
int cmd_trace(int argc, char** argv) {
  support::Flags flags(argc, argv, {"wall"});
  if (!flags.unknown_flags().empty()) {
    std::fprintf(stderr, "unknown flag: --%s\n",
                 flags.unknown_flags()[0].c_str());
    return usage();
  }
  // positional() = {"trace", "export", in.jsonl, out.perfetto.json}.
  if (flags.positional().size() != 4 || flags.positional()[1] != "export") {
    return usage();
  }
  const std::string in_file = flags.positional()[2];
  const std::string out_file = flags.positional()[3];
  const std::string wall_file = flags.get("wall", "");

  auto read_lines = [](const std::string& path, auto&& per_line) {
    std::FILE* f = std::fopen(path.c_str(), "r");
    if (f == nullptr) throw std::runtime_error("cannot read " + path);
    std::string line;
    std::size_t line_no = 0;
    int c;
    while ((c = std::fgetc(f)) != EOF) {
      if (c != '\n') {
        line += static_cast<char>(c);
        continue;
      }
      ++line_no;
      if (!line.empty()) per_line(line, line_no);
      line.clear();
    }
    if (!line.empty()) per_line(line, ++line_no);
    std::fclose(f);
  };

  std::vector<congest::TraceEvent> events;
  read_lines(in_file, [&](const std::string& line, std::size_t line_no) {
    congest::TraceEvent e;
    std::string error;
    if (!congest::parse_trace_jsonl(line, e, &error)) {
      throw std::runtime_error(in_file + ":" + std::to_string(line_no) +
                               ": " + error);
    }
    events.push_back(std::move(e));
  });
  std::vector<congest::WallSpan> wall;
  if (!wall_file.empty()) {
    read_lines(wall_file, [&](const std::string& line, std::size_t line_no) {
      congest::WallSpan s;
      std::string error;
      if (!congest::parse_wall_jsonl(line, s, &error)) {
        throw std::runtime_error(wall_file + ":" + std::to_string(line_no) +
                                 ": " + error);
      }
      wall.push_back(std::move(s));
    });
  }

  const std::string json = congest::perfetto_trace_json(events, wall);
  std::FILE* f = std::fopen(out_file.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_file.c_str());
    return 2;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("trace: exported %zu events", events.size());
  if (!wall.empty()) std::printf(" + %zu wall spans", wall.size());
  std::printf(" to %s (open at ui.perfetto.dev)\n", out_file.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  // Invariant trips (e.g. an algorithm's self-check after the reliable
  // transport gave up on a hopelessly lossy link) become catchable errors
  // instead of aborting the process.
  support::ScopedChecksThrow checks_as_errors;
  try {
    if (cmd == "gen") return cmd_gen(argc, argv);
    if (cmd == "info") return cmd_info(argc, argv);
    if (cmd == "run") return cmd_run(argc, argv);
    if (cmd == "trace") return cmd_trace(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n(run 'mwc_cli' with no arguments for usage)\n",
                 e.what());
    return 2;
  }
  return usage();
}
