#include "report_html.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

namespace mwc::tools {

namespace {

using support::JsonValue;

void esc(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
}

std::string fmt_u64(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.0f", v);
  return buf;
}

std::string fmt_g(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4g", v);
  return buf;
}

// A horizontal bar scaled against `max` (SVG-free: a styled div is enough
// and keeps the markup small).
void bar(std::string& out, double value, double max, const char* cls) {
  const double pct = max > 0 ? 100.0 * value / max : 0.0;
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "<div class=\"barbox\"><div class=\"bar %s\" "
                "style=\"width:%.2f%%\"></div></div>",
                cls, pct < 0.5 && value > 0 ? 0.5 : pct);
  out += buf;
}

void chip(std::string& out, const char* label, const std::string& value) {
  out += "<div class=\"chip\"><span class=\"chiplabel\">";
  esc(out, label);
  out += "</span><span class=\"chipvalue\">";
  esc(out, value);
  out += "</span></div>\n";
}

void section_open(std::string& out, const char* heading, const char* note) {
  out += "<section><h2>";
  esc(out, heading);
  out += "</h2>";
  if (note != nullptr && note[0] != '\0') {
    out += "<p class=\"note\">";
    esc(out, note);
    out += "</p>";
  }
}

// Timeline sparkline as inline SVG: words per retained engine round.
void sparkline(std::string& out, const std::vector<double>& values,
               const char* color) {
  if (values.empty()) return;
  const int w = 720, h = 80, pad = 2;
  double max = 0;
  for (double v : values) max = std::max(max, v);
  if (max <= 0) max = 1;
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "<svg viewBox=\"0 0 %d %d\" width=\"%d\" height=\"%d\" "
                "role=\"img\">",
                w, h, w, h);
  out += buf;
  const double dx =
      values.size() > 1
          ? static_cast<double>(w - 2 * pad) /
                static_cast<double>(values.size() - 1)
          : 0.0;
  out += "<polyline fill=\"none\" stroke=\"";
  out += color;
  out += "\" stroke-width=\"1.5\" points=\"";
  for (std::size_t i = 0; i < values.size(); ++i) {
    const double x = pad + dx * static_cast<double>(i);
    const double y = h - pad - (h - 2 * pad) * values[i] / max;
    std::snprintf(buf, sizeof(buf), "%.1f,%.1f ", x, y);
    out += buf;
  }
  out += "\"/></svg>";
}

// Round heatmap as an SVG strip: one cell per engine round, shaded by words
// moved that round relative to the busiest round.
void heat_strip(std::string& out, const std::vector<double>& words) {
  if (words.empty()) return;
  const int w = 720, h = 36;
  double max = 0;
  for (double v : words) max = std::max(max, v);
  if (max <= 0) max = 1;
  char buf[200];
  std::snprintf(buf, sizeof(buf),
                "<svg viewBox=\"0 0 %d %d\" width=\"%d\" height=\"%d\" "
                "role=\"img\">",
                w, h, w, h);
  out += buf;
  const double cell = static_cast<double>(w) / static_cast<double>(words.size());
  for (std::size_t i = 0; i < words.size(); ++i) {
    // Light-to-dark blue ramp; zero-word rounds render near-white.
    const double t = words[i] / max;
    const int r = static_cast<int>(238 - 190 * t);
    const int g = static_cast<int>(242 - 160 * t);
    const int b = 248;
    std::snprintf(buf, sizeof(buf),
                  "<rect x=\"%.2f\" y=\"0\" width=\"%.2f\" height=\"%d\" "
                  "fill=\"rgb(%d,%d,%d)\"/>",
                  cell * static_cast<double>(i), cell + 0.05, h, r, g, b);
    out += buf;
  }
  out += "</svg>";
}

const char* kCss = R"css(
  body { font: 14px/1.5 system-ui, sans-serif; margin: 2rem auto;
         max-width: 64rem; padding: 0 1rem; color: #1a2433; }
  h1 { font-size: 1.5rem; border-bottom: 2px solid #2b5fa3;
       padding-bottom: .4rem; }
  h2 { font-size: 1.1rem; margin-top: 2rem; color: #2b5fa3; }
  .note { color: #5a6b80; font-size: .85rem; margin: .2rem 0 .8rem; }
  .chips { display: flex; flex-wrap: wrap; gap: .6rem; margin: 1rem 0; }
  .chip { background: #eef2f8; border-radius: .5rem; padding: .4rem .8rem; }
  .chiplabel { display: block; font-size: .7rem; color: #5a6b80;
               text-transform: uppercase; letter-spacing: .04em; }
  .chipvalue { font-size: 1.05rem; font-weight: 600; font-variant-numeric:
               tabular-nums; }
  table { border-collapse: collapse; width: 100%; font-variant-numeric:
          tabular-nums; }
  th, td { text-align: left; padding: .3rem .6rem; border-bottom:
           1px solid #dfe6ef; vertical-align: middle; }
  th { font-size: .75rem; color: #5a6b80; text-transform: uppercase;
       letter-spacing: .04em; }
  td.num { text-align: right; }
  .barbox { background: #eef2f8; border-radius: .2rem; height: .8rem;
            min-width: 8rem; }
  .bar { height: 100%; border-radius: .2rem; }
  .bar.rounds { background: #2b5fa3; }
  .bar.words { background: #4a90d9; }
  .bar.pass { background: #2e8b57; }
  .bar.warn { background: #c0392b; }
  .verdict-pass { color: #2e8b57; font-weight: 600; }
  .verdict-warn { color: #c0392b; font-weight: 600; }
  code { background: #eef2f8; padding: .1rem .3rem; border-radius: .2rem; }
)css";

void render_summary(std::string& out, const JsonValue& metrics) {
  const JsonValue* total = metrics.find("total");
  if (total == nullptr || !total->is_object()) return;
  out += "<div class=\"chips\">\n";
  chip(out, "runs", fmt_u64(total->number_or("runs", 0)));
  chip(out, "rounds", fmt_u64(total->number_or("rounds", 0)));
  chip(out, "messages", fmt_u64(total->number_or("messages", 0)));
  chip(out, "words", fmt_u64(total->number_or("words", 0)));
  chip(out, "peak queue (words)", fmt_u64(total->number_or("max_queue_words", 0)));
  const JsonValue* busiest = total->find("busiest_link");
  if (busiest != nullptr && busiest->is_array() && busiest->items.size() == 2 &&
      total->number_or("max_link_words", 0) > 0) {
    chip(out, "busiest link",
         fmt_u64(busiest->items[0].number) + " → " +
             fmt_u64(busiest->items[1].number) + " (" +
             fmt_u64(total->number_or("max_link_words", 0)) + " w)");
  }
  const std::string error(metrics.string_or("error", ""));
  if (!error.empty()) chip(out, "error", error);
  out += "</div>\n";
}

void render_phases(std::string& out, const JsonValue& metrics) {
  const JsonValue* phases = metrics.find("phases");
  if (phases == nullptr || !phases->is_array() || phases->items.empty()) return;
  double max_rounds = 0, max_words = 0;
  for (const JsonValue& p : phases->items) {
    max_rounds = std::max(max_rounds, p.number_or("rounds", 0));
    max_words = std::max(max_words, p.number_or("words", 0));
  }
  section_open(out, "Phase waterfall",
               "Rounds and words per phase path, in first-open order. Bars "
               "are scaled against the costliest phase.");
  out += "<table><tr><th>phase</th><th>runs</th><th>rounds</th><th></th>"
         "<th>words</th><th></th></tr>\n";
  for (const JsonValue& p : phases->items) {
    out += "<tr><td><code>";
    esc(out, p.string_or("phase", "?"));
    out += "</code></td><td class=\"num\">";
    out += fmt_u64(p.number_or("runs", 0));
    out += "</td><td class=\"num\">";
    out += fmt_u64(p.number_or("rounds", 0));
    out += "</td><td>";
    bar(out, p.number_or("rounds", 0), max_rounds, "rounds");
    out += "</td><td class=\"num\">";
    out += fmt_u64(p.number_or("words", 0));
    out += "</td><td>";
    bar(out, p.number_or("words", 0), max_words, "words");
    out += "</td></tr>\n";
  }
  out += "</table></section>\n";
}

void render_heatmap(std::string& out,
                    const std::vector<congest::TraceEvent>& trace) {
  std::vector<double> words;
  for (const congest::TraceEvent& e : trace) {
    if (e.kind == congest::TraceEventKind::kRoundEnd) {
      words.push_back(static_cast<double>(e.words));
    }
  }
  if (words.empty()) return;
  section_open(out, "Round heatmap",
               "Words settled per engine round across every run, in trace "
               "order; darker cells are busier rounds.");
  heat_strip(out, words);
  char buf[96];
  std::snprintf(buf, sizeof(buf), "<p class=\"note\">%zu rounds traced.</p>",
                words.size());
  out += buf;
  out += "</section>\n";
}

void render_congestion(std::string& out, const JsonValue& metrics) {
  const JsonValue* c = metrics.find("congestion");
  if (c == nullptr || !c->is_object()) return;
  section_open(out, "Congestion observatory",
               "Per-link attribution recorded by the attached "
               "CongestionLedger (run with --congestion).");
  out += "<div class=\"chips\">\n";
  chip(out, "rounds observed", fmt_u64(c->number_or("rounds_observed", 0)));
  chip(out, "total words", fmt_u64(c->number_or("total_words", 0)));
  chip(out, "spill peak (slots)", fmt_u64(c->number_or("spill_peak_slots", 0)));
  chip(out, "overflow peak (entries)",
       fmt_u64(c->number_or("overflow_peak_entries", 0)));
  out += "</div>\n";

  const JsonValue* links = c->find("top_links");
  if (links != nullptr && links->is_array() && !links->items.empty()) {
    double max = 0;
    for (const JsonValue& l : links->items) {
      max = std::max(max, l.number_or("words", 0));
    }
    out += "<h2>Hottest links</h2><table><tr><th>link</th>"
           "<th>words</th><th></th></tr>\n";
    for (const JsonValue& l : links->items) {
      out += "<tr><td><code>";
      out += fmt_u64(l.number_or("from", -1));
      out += " → ";
      out += fmt_u64(l.number_or("to", -1));
      out += "</code></td><td class=\"num\">";
      out += fmt_u64(l.number_or("words", 0));
      out += "</td><td>";
      bar(out, l.number_or("words", 0), max, "words");
      out += "</td></tr>\n";
    }
    out += "</table>\n";
  }

  const JsonValue* timeline = c->find("timeline");
  if (timeline != nullptr && timeline->is_array() &&
      !timeline->items.empty()) {
    std::vector<double> words, backlog, frontier;
    for (const JsonValue& s : timeline->items) {
      words.push_back(s.number_or("words", 0));
      backlog.push_back(s.number_or("backlog", 0));
      frontier.push_back(s.number_or("frontier_nodes", 0));
    }
    out += "<h2>Round timeline</h2>";
    out += "<p class=\"note\">Words settled per round (blue), end-of-round "
           "backlog (red), frontier width in nodes (green); most recent ";
    out += fmt_u64(static_cast<double>(words.size()));
    out += " rounds retained";
    const double dropped = c->number_or("timeline_dropped", 0);
    if (dropped > 0) {
      out += ", " + fmt_u64(dropped) + " older samples evicted";
    }
    out += ".</p>";
    sparkline(out, words, "#2b5fa3");
    sparkline(out, backlog, "#c0392b");
    sparkline(out, frontier, "#2e8b57");
  }
  out += "</section>\n";
}

void render_adherence(std::string& out, const JsonValue& metrics) {
  const JsonValue* a = metrics.find("adherence");
  if (a == nullptr || !a->is_object()) return;
  section_open(out, "Bound adherence",
               "Observed counters fitted against each algorithm's declared "
               "closed-form complexity; the constant is observed/predicted "
               "and must stay at or below its threshold.");
  out += "<div class=\"chips\">\n";
  chip(out, "algorithm", std::string(a->string_or("algorithm", "?")));
  chip(out, "n", fmt_u64(a->number_or("n", 0)));
  chip(out, "m", fmt_u64(a->number_or("m", 0)));
  chip(out, "diameter", fmt_u64(a->number_or("diameter", 0)));
  chip(out, "verdict", std::string(a->string_or("verdict", "?")));
  out += "</div>\n";
  const JsonValue* entries = a->find("entries");
  if (entries == nullptr || !entries->is_array() || entries->items.empty()) {
    out += "</section>\n";
    return;
  }
  out += "<table><tr><th>scope</th><th>counter</th><th>bound</th>"
         "<th>predicted</th><th>observed</th><th>constant</th>"
         "<th>threshold</th><th></th><th>verdict</th></tr>\n";
  for (const JsonValue& e : entries->items) {
    const std::string verdict(e.string_or("verdict", "warn"));
    const bool pass = verdict == "pass";
    out += "<tr><td><code>";
    esc(out, e.string_or("scope", "?"));
    out += "</code></td><td>";
    esc(out, e.string_or("counter", "?"));
    out += "</td><td><code>";
    esc(out, e.string_or("form", "?"));
    out += "</code></td><td class=\"num\">";
    out += fmt_g(e.number_or("predicted", 0));
    out += "</td><td class=\"num\">";
    out += fmt_u64(e.number_or("observed", 0));
    out += "</td><td class=\"num\">";
    out += fmt_g(e.number_or("constant", 0));
    out += "</td><td class=\"num\">";
    out += fmt_g(e.number_or("threshold", 0));
    out += "</td><td>";
    // Constant-vs-threshold gauge: full width == the threshold.
    bar(out, e.number_or("constant", 0), e.number_or("threshold", 1),
        pass ? "pass" : "warn");
    out += "</td><td class=\"verdict-";
    out += pass ? "pass" : "warn";
    out += "\">";
    esc(out, verdict);
    out += "</td></tr>\n";
  }
  out += "</table></section>\n";
}

}  // namespace

std::string render_report_html(const JsonValue& metrics,
                               const std::vector<congest::TraceEvent>& trace,
                               const std::string& title) {
  std::string out;
  out.reserve(1 << 15);
  out += "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n"
         "<meta charset=\"utf-8\">\n<title>";
  esc(out, title);
  out += "</title>\n<style>";
  out += kCss;
  out += "</style>\n</head>\n<body>\n<h1>";
  esc(out, title);
  out += "</h1>\n";
  render_summary(out, metrics);
  render_phases(out, metrics);
  render_heatmap(out, trace);
  render_congestion(out, metrics);
  render_adherence(out, metrics);
  out += "</body>\n</html>\n";
  return out;
}

}  // namespace mwc::tools
