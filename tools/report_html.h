// Self-contained HTML dashboard renderer for `mwc_cli report`.
//
// Takes a parsed metrics snapshot (the JSON `mwc_cli run --metrics` emits,
// optionally carrying the `congestion` / `adherence` sections) plus an
// optional JSONL trace, and renders one standalone HTML file: inline CSS,
// server-side-rendered inline SVG charts, no JavaScript, no external
// references of any kind (no CDN fonts, no http(s):// URLs), so the file
// opens identically offline and is safe to archive next to the bench JSON.
//
// Determinism: the output is a pure function of the parsed inputs and the
// title - no timestamps, no input file names, no environment. Metrics and
// traces are byte-identical across --threads values, so the rendered
// reports are too (ci.sh's report stage compares them byte-for-byte).
#pragma once

#include <string>
#include <vector>

#include "congest/trace.h"
#include "support/json.h"

namespace mwc::tools {

// Renders the dashboard. `metrics` must be the parsed object form of a
// MetricsSnapshot::to_json() document; `trace` may be empty (the round
// heatmap section is omitted then). `title` is the page heading - callers
// must not default it to anything run-dependent.
std::string render_report_html(const support::JsonValue& metrics,
                               const std::vector<congest::TraceEvent>& trace,
                               const std::string& title);

}  // namespace mwc::tools
