// trace_diff - first-divergence comparison of two recorded JSONL traces.
//
//   trace_diff <a.jsonl> <b.jsonl> [--context=N]
//
// Traces come from `mwc_cli run ... --trace=FILE` (or any JsonlSink). The
// deterministic event stream is byte-identical across thread counts for the
// same seeded execution, so any difference is a real behavioral divergence;
// this tool reports the first one, with N common events of context before
// it and N following events from each trace (default 3).
//
// Exit status: 0 when the traces are identical, 1 on a divergence, 2 on
// errors (unreadable files, bad arguments).
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "congest/trace_export.h"
#include "support/flags.h"

int main(int argc, char** argv) {
  mwc::support::Flags flags(argc, argv, {"context"});
  if (!flags.unknown_flags().empty()) {
    std::fprintf(stderr, "unknown flag: --%s\n",
                 flags.unknown_flags()[0].c_str());
    return 2;
  }
  // positional() = {a.jsonl, b.jsonl} (argv[0] is stripped by Flags).
  if (flags.positional().size() != 2) {
    std::fprintf(stderr,
                 "usage: trace_diff <a.jsonl> <b.jsonl> [--context=N]\n");
    return 2;
  }
  const int context = static_cast<int>(flags.get_int("context", 3));
  if (context < 0) {
    std::fprintf(stderr, "--context must be >= 0\n");
    return 2;
  }

  std::ifstream a(flags.positional()[0]);
  if (!a) {
    std::fprintf(stderr, "cannot read %s\n", flags.positional()[0].c_str());
    return 2;
  }
  std::ifstream b(flags.positional()[1]);
  if (!b) {
    std::fprintf(stderr, "cannot read %s\n", flags.positional()[1].c_str());
    return 2;
  }

  mwc::congest::TraceDiff diff = mwc::congest::diff_traces(a, b, context);
  std::fputs(mwc::congest::to_string(diff).c_str(), stdout);
  return diff.diverged ? 1 : 0;
}
